#include "cluster/cluster_router.hpp"

#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.hpp"

namespace efld::cluster {

namespace {

ShardLoad to_shard_load(const serve::ServeLoad& l) {
    ShardLoad s;
    s.queued = l.queued;
    s.queue_capacity = l.queue_capacity;
    s.active = l.active;
    s.paging = l.paging;
    s.committed_pages = l.committed_pages;
    s.queued_pages = l.queued_pages;
    s.total_pages = l.total_pages;
    return s;
}

}  // namespace

ClusterRouter::ClusterRouter(const model::QuantizedModelWeights& weights,
                             ClusterOptions opts)
    : opts_(std::move(opts)) {
    if (opts_.shards == 0) {
        throw std::invalid_argument("ClusterRouter: shards must be >= 1");
    }
    if (opts_.retry_hint_ms == 0) {
        throw std::invalid_argument(
            "ClusterRouter: retry_hint_ms must be >= 1 (a zero hint tells "
            "rejected callers to hammer the router)");
    }
    placement_ = make_placement(opts_.placement);
    shards_.reserve(opts_.shards);
    for (std::size_t i = 0; i < opts_.shards; ++i) {
        shards_.push_back(
            std::make_unique<serve::ServeEngine>(weights, opts_.shard));
    }
}

ClusterRouter::~ClusterRouter() {
    try {
        stop();
    } catch (...) {
        // A parked shard error has nowhere to go from a destructor.
    }
}

void ClusterRouter::start() {
    check(!running(), "ClusterRouter: already started");
    for (auto& s : shards_) s->run();
    running_.store(true, std::memory_order_release);
}

void ClusterRouter::stop() {
    // Parallel quiesce: every shard joins its driver on its own thread, so a
    // cluster stops in the time of its slowest shard. Shard errors (parked
    // callback exceptions rethrown by ServeEngine::stop) are collected and
    // the first is rethrown once every shard has actually stopped — an
    // exploding callback on shard 0 must not leave shard 3 running.
    std::vector<std::exception_ptr> errors(shards_.size());
    std::vector<std::thread> joiners;
    joiners.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        joiners.emplace_back([this, i, &errors] {
            try {
                shards_[i]->stop();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto& t : joiners) t.join();
    running_.store(false, std::memory_order_release);
    for (const std::exception_ptr& e : errors) {
        if (e != nullptr) std::rethrow_exception(e);
    }
}

std::size_t ClusterRouter::predict_demand(const serve::Request& req) const {
    if (!opts_.shard.paging) return 0;
    // Shards are uniformly configured, so any governor prices the demand.
    const kvpool::CapacityGovernor* g = shards_.front()->governor();
    const std::size_t prompt_tokens =
        shards_.front()->tokenizer().encode(req.prompt).size();
    return g->predict_pages(prompt_tokens, req.max_new_tokens);
}

ClusterRouter::SubmitOutcome ClusterRouter::try_submit(serve::Request req) {
    const std::size_t demand = predict_demand(req);
    // Accepted costs at embedded-cluster scale: placement serializes on one
    // mutex and snapshots every shard (with paging, load() walks each queue
    // to price queued demand — O(shards x queue depth) per submission), and
    // predict_demand's tokenization is repeated by the shard's submit. A
    // higher-fanout router would keep incremental queued-demand counters and
    // thread the encoded prompt through.
    const std::lock_guard<std::mutex> lock(place_mu_);
    std::vector<ShardLoad> loads;
    loads.reserve(shards_.size());
    bool could_ever_fit = false;
    for (const auto& s : shards_) {
        loads.push_back(to_shard_load(s->load()));
        could_ever_fit = could_ever_fit || loads.back().ever_fits(demand);
    }
    // Permanent impossibility is a malformed request, not backpressure: no
    // amount of retrying shrinks a demand past every shard's whole pool.
    check(could_ever_fit,
          "ClusterRouter: prompt + max_new demand exceeds every shard's KV pool");

    SubmitOutcome out;
    const std::size_t idx = placement_->pick(loads, demand);
    if (idx == kNoShard) {
        // Every eligible queue is full: 429. Hint scales with the shallowest
        // backlog — the soonest any shard could take this request.
        std::size_t min_inflight = loads.front().inflight();
        for (const ShardLoad& l : loads) {
            min_inflight = l.inflight() < min_inflight ? l.inflight() : min_inflight;
        }
        out.retry_hint =
            std::chrono::milliseconds(opts_.retry_hint_ms * (1 + min_inflight));
        return out;
    }
    check(idx < shards_.size(), "ClusterRouter: placement pick out of range");
    // Under place_mu_ only the router pushes to shard queues and the snapshot
    // above saw headroom, so this submit cannot hit a full queue; request
    // validation errors (empty prompt, context overflow) still propagate.
    out.handle = shards_[idx]->submit(std::move(req));
    out.accepted = true;
    out.shard = idx;
    return out;
}

serve::RequestHandle ClusterRouter::submit(serve::Request req) {
    SubmitOutcome out = try_submit(std::move(req));
    check(out.accepted,
          "ClusterRouter: every shard is saturated; use try_submit() for "
          "backpressure instead of exceptions");
    return std::move(out.handle);
}

void ClusterRouter::drain() {
    // Parallel drain: with drivers running each thread waits on its shard's
    // idle signal; without drivers wait_until_idle() steps the shard inline,
    // so even a manual-stepping cluster drains with one thread per shard.
    // Inline stepping rethrows on_token callback exceptions — catch them per
    // waiter (an exception escaping a std::thread is std::terminate) and
    // surface the first once every shard has been waited on.
    std::vector<std::exception_ptr> errors(shards_.size());
    std::vector<std::thread> waiters;
    waiters.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        waiters.emplace_back([this, i, &errors] {
            try {
                shards_[i]->wait_until_idle();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto& t : waiters) t.join();
    for (const std::exception_ptr& e : errors) {
        if (e != nullptr) std::rethrow_exception(e);
    }
}

ClusterStats ClusterRouter::stats() const {
    ClusterStats cs;
    cs.shards.reserve(shards_.size());
    for (const auto& s : shards_) cs.shards.push_back(s->load());
    return cs;
}

}  // namespace efld::cluster
