#include "cluster/wire.hpp"

#include <cstring>

#include "common/check.hpp"

namespace efld::cluster::wire {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_bytes(std::vector<std::uint8_t>& out, std::string_view s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked little-endian reader over one payload.
class Cursor {
public:
    explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8() {
        need(1);
        return data_[pos_++];
    }
    std::uint32_t u32() {
        need(4);
        const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                                static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                                static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                                static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
        pos_ += 4;
        return v;
    }
    std::uint64_t u64() {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::string str() {
        const std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
        pos_ += n;
        return s;
    }
    void finish() const {
        check(pos_ == data_.size(), "wire: trailing bytes after payload");
    }

private:
    void need(std::size_t n) const {
        check(pos_ + n <= data_.size(), "wire: truncated payload");
    }
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_request(const WireRequest& req) {
    std::vector<std::uint8_t> out;
    out.reserve(2 + 4 + 4 + 4 + req.prompt.size());
    put_u8(out, kVersion);
    put_u8(out, static_cast<std::uint8_t>(req.kind));
    switch (req.kind) {
        case RequestKind::kGenerate:
            put_u32(out, req.max_new_tokens);
            put_u32(out, req.deadline_ms);
            put_bytes(out, req.prompt);
            break;
        case RequestKind::kMetrics:
            put_u8(out, static_cast<std::uint8_t>(req.metrics_format));
            break;
        case RequestKind::kTraceDump:
        case RequestKind::kAlerts:
            break;  // no body
        case RequestKind::kQuery:
            put_u32(out, req.query_window_ms);
            put_bytes(out, req.query_series);
            break;
    }
    return out;
}

WireRequest decode_request(std::span<const std::uint8_t> payload) {
    Cursor c(payload);
    check(c.u8() == kVersion, "wire: unknown request version");
    WireRequest req;
    const std::uint8_t kind = c.u8();
    check(kind <= static_cast<std::uint8_t>(RequestKind::kQuery),
          "wire: unknown request kind");
    req.kind = static_cast<RequestKind>(kind);
    switch (req.kind) {
        case RequestKind::kGenerate:
            req.max_new_tokens = c.u32();
            req.deadline_ms = c.u32();
            req.prompt = c.str();
            break;
        case RequestKind::kMetrics: {
            const std::uint8_t format = c.u8();
            check(format <= static_cast<std::uint8_t>(MetricsFormat::kJson),
                  "wire: unknown metrics format");
            req.metrics_format = static_cast<MetricsFormat>(format);
            break;
        }
        case RequestKind::kTraceDump:
        case RequestKind::kAlerts:
            break;  // no body
        case RequestKind::kQuery:
            req.query_window_ms = c.u32();
            req.query_series = c.str();
            break;
    }
    c.finish();
    return req;
}

std::vector<std::uint8_t> encode_response(const WireResponse& resp) {
    std::vector<std::uint8_t> out;
    put_u8(out, kVersion);
    put_u8(out, static_cast<std::uint8_t>(resp.status));
    switch (resp.status) {
        case Status::kOk:
            put_u64(out, resp.id);
            put_u8(out, resp.finish_reason);
            put_u32(out, resp.times_deferred);
            put_u32(out, resp.failovers);
            put_u32(out, static_cast<std::uint32_t>(resp.tokens.size()));
            for (const std::int32_t t : resp.tokens) {
                put_u32(out, static_cast<std::uint32_t>(t));
            }
            put_bytes(out, resp.text);
            break;
        case Status::kRejected:
            put_u32(out, resp.retry_ms);
            break;
        case Status::kError:
            put_bytes(out, resp.error);
            break;
        case Status::kMetrics:
            put_bytes(out, resp.metrics);
            break;
        case Status::kTraceDump:
            put_bytes(out, resp.trace);
            break;
        case Status::kAlerts:
            put_bytes(out, resp.alerts);
            break;
        case Status::kQuery:
            put_bytes(out, resp.query);
            break;
    }
    return out;
}

WireResponse decode_response(std::span<const std::uint8_t> payload) {
    Cursor c(payload);
    check(c.u8() == kVersion, "wire: unknown response version");
    WireResponse resp;
    const std::uint8_t status = c.u8();
    check(status <= static_cast<std::uint8_t>(Status::kQuery),
          "wire: unknown response status");
    resp.status = static_cast<Status>(status);
    switch (resp.status) {
        case Status::kOk: {
            resp.id = c.u64();
            resp.finish_reason = c.u8();
            resp.times_deferred = c.u32();
            resp.failovers = c.u32();
            const std::uint32_t n = c.u32();
            check(n <= kMaxFrameBytes / sizeof(std::int32_t),
                  "wire: token count exceeds the frame bound");
            resp.tokens.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) resp.tokens.push_back(c.i32());
            resp.text = c.str();
            break;
        }
        case Status::kRejected:
            resp.retry_ms = c.u32();
            break;
        case Status::kError:
            resp.error = c.str();
            break;
        case Status::kMetrics:
            resp.metrics = c.str();
            break;
        case Status::kTraceDump:
            resp.trace = c.str();
            break;
        case Status::kAlerts:
            resp.alerts = c.str();
            break;
        case Status::kQuery:
            resp.query = c.str();
            break;
    }
    c.finish();
    return resp;
}

}  // namespace efld::cluster::wire
