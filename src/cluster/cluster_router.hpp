// Sharded serving cluster: N independent engine+governor pairs behind one
// load-aware router.
//
// A single ServeEngine is capped by one backend's weight walk and one
// governor's page pool. The natural scale-out unit on embedded parts is MORE
// DEVICES — each with its own DDR bandwidth and capacity budget — so the
// cluster layer shards traffic across fully independent shards instead of
// growing one pool:
//
//   shard = engine::make_backend (own weight walk)
//         + kvpool::CapacityGovernor (own page budget, when paging)
//         + serve::ServeEngine::run() (own background driver thread)
//
// The router owns the shards and routes serve::Requests through a pluggable
// Placement policy (round-robin, least-loaded, best-fit-by-pages — see
// placement.hpp). Everything downstream of placement is the single-engine
// serve path: per-request streaming callbacks, cancellation, deadlines, and
// governor admission all work unchanged, and a request's tokens are
// bit-for-bit identical to a solo run whichever shard it lands on (sessions
// never interact), so routing is a pure throughput/capacity decision.
//
// Backpressure: submit() throws when every shard is saturated; try_submit()
// instead returns Rejected{retry_hint} (HTTP-429 style) so a front-end can
// shed load without exceptions. A demand no shard's pool could EVER hold is
// not backpressure — both paths throw, mirroring ServeEngine::submit.
//
// Threading: submit()/try_submit() are safe from any thread (placement
// decisions serialize on an internal mutex; per-shard load snapshots come
// from ServeEngine::load(), which is written under the shard's stats lock).
// start()/stop()/drain() are driven from one controlling thread. stop() and
// drain() quiesce all shards in parallel — a cluster drains in the time of
// its slowest shard, not the sum.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "cluster/placement.hpp"
#include "model/weights.hpp"
#include "serve/serve_engine.hpp"

namespace efld::cluster {

struct ClusterOptions {
    serve::ServeOptions shard;  // every shard serves with this configuration
    std::size_t shards = 2;
    PlacementPolicy placement = PlacementPolicy::kLeastLoaded;
    // Base unit of try_submit's retry hint: the hint scales with the least
    // backlogged shard's in-flight count, so callers back off harder the
    // deeper the cluster-wide queue is.
    std::uint32_t retry_hint_ms = 10;
};

// Per-shard load snapshots plus cluster-wide aggregates. Shards are
// independent engines (one per device in deployment), so the cluster's
// modeled completion time for a drained workload is the SLOWEST shard's busy
// time, not the sum — which is what the aggregate throughput helpers divide
// by.
struct ClusterStats {
    std::vector<serve::ServeLoad> shards;

    [[nodiscard]] std::size_t queued() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.queued;
        return n;
    }
    [[nodiscard]] std::size_t active() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.active;
        return n;
    }
    [[nodiscard]] std::size_t generated_tokens() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.generated_tokens;
        return n;
    }
    [[nodiscard]] std::size_t requests_completed() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.requests_completed;
        return n;
    }
    [[nodiscard]] std::size_t committed_pages() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.committed_pages;
        return n;
    }
    [[nodiscard]] std::size_t total_pages() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.total_pages;
        return n;
    }
    [[nodiscard]] std::size_t capacity_deferrals() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.capacity_deferrals;
        return n;
    }
    [[nodiscard]] std::size_t queue_promotions() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.queue_promotions;
        return n;
    }
    // Slowest shard's host time inside decode steps — the cluster's modeled
    // wall completion time with one core/device per shard.
    [[nodiscard]] double max_wall_ns() const noexcept {
        double m = 0.0;
        for (const auto& s : shards) m = s.stats.wall_ns > m ? s.stats.wall_ns : m;
        return m;
    }
    // Slowest shard's modeled device time (accel backend).
    [[nodiscard]] double max_simulated_ns() const noexcept {
        double m = 0.0;
        for (const auto& s : shards) {
            m = s.stats.simulated_ns > m ? s.stats.simulated_ns : m;
        }
        return m;
    }
    // Aggregate serving throughput with each shard on its own device: total
    // tokens over the slowest shard's busy time.
    [[nodiscard]] double isolated_tokens_per_s() const noexcept {
        const double ns = max_wall_ns();
        return ns > 0.0 ? static_cast<double>(generated_tokens()) * 1e9 / ns : 0.0;
    }
    [[nodiscard]] double simulated_cluster_tokens_per_s() const noexcept {
        const double ns = max_simulated_ns();
        return ns > 0.0 ? static_cast<double>(generated_tokens()) * 1e9 / ns : 0.0;
    }
};

class ClusterRouter {
public:
    // Builds opts.shards independent ServeEngines over the same (non-owning)
    // weights — each shard constructs its own backend through
    // engine::make_backend, and its own governor when paging. Throws
    // std::invalid_argument on zero shards or invalid shard options.
    ClusterRouter(const model::QuantizedModelWeights& weights, ClusterOptions opts);

    // Stops every shard driver (parking any shard errors) before teardown.
    ~ClusterRouter();

    ClusterRouter(const ClusterRouter&) = delete;
    ClusterRouter& operator=(const ClusterRouter&) = delete;

    // Starts every shard's background driver. Throws if already started.
    void start();
    // Parallel-quiesces all shards: each driver joins on its own thread; the
    // first parked shard error (a callback exception) is rethrown after every
    // shard has stopped. Idempotent.
    void stop();
    [[nodiscard]] bool running() const noexcept {
        return running_.load(std::memory_order_acquire);
    }

    // Routes the request to the placement policy's shard and submits it
    // there; the returned handle streams/cancels/awaits exactly as on a
    // single engine. Throws efld::Error when every shard is saturated (use
    // try_submit for backpressure) or when no shard's pool could ever hold
    // the demand.
    serve::RequestHandle submit(serve::Request req);

    // Non-throwing admission: 429-style backpressure instead of an exception
    // when every eligible shard's queue is full. `retry_hint` scales with the
    // cluster's backlog. Still throws on a demand no shard could EVER hold
    // (that is a malformed request, not transient pressure).
    struct SubmitOutcome {
        bool accepted = false;
        serve::RequestHandle handle;           // valid when accepted
        std::size_t shard = kNoShard;          // where it landed
        std::chrono::milliseconds retry_hint{0};  // when rejected
    };
    SubmitOutcome try_submit(serve::Request req);

    // Blocks until every shard is idle (queue empty, no active sessions).
    // Shards drain in parallel; without start() each drains inline on its own
    // thread, so manual-stepping clusters drain multi-threaded too.
    void drain();

    // One load snapshot per shard, taken live (safe while drivers run).
    [[nodiscard]] ClusterStats stats() const;

    [[nodiscard]] std::size_t shard_count() const noexcept {
        return shards_.size();
    }
    [[nodiscard]] serve::ServeEngine& shard(std::size_t i) { return *shards_[i]; }
    [[nodiscard]] const serve::ServeEngine& shard(std::size_t i) const {
        return *shards_[i];
    }
    [[nodiscard]] const ClusterOptions& options() const noexcept { return opts_; }
    [[nodiscard]] std::string_view placement_name() const noexcept {
        return placement_->name();
    }

private:
    // Worst-case page demand of a request on any shard (uniform shard
    // configuration), 0 without paging.
    [[nodiscard]] std::size_t predict_demand(const serve::Request& req) const;

    ClusterOptions opts_;
    std::unique_ptr<Placement> placement_;
    std::vector<std::unique_ptr<serve::ServeEngine>> shards_;
    mutable std::mutex place_mu_;  // serializes placement + enqueue
    std::atomic<bool> running_{false};
};

}  // namespace efld::cluster
