// Sharded serving cluster: N independent engine+governor pairs behind one
// load-aware router.
//
// A single ServeEngine is capped by one backend's weight walk and one
// governor's page pool. The natural scale-out unit on embedded parts is MORE
// DEVICES — each with its own DDR bandwidth and capacity budget — so the
// cluster layer shards traffic across fully independent shards instead of
// growing one pool:
//
//   shard = engine::make_backend (own weight walk)
//         + kvpool::CapacityGovernor (own page budget, when paging)
//         + serve::ServeEngine::run() (own background driver thread)
//
// The router owns the shards and routes serve::Requests through a pluggable
// Placement policy (round-robin, least-loaded, best-fit-by-pages,
// prefix-affinity — see placement.hpp). Everything downstream of placement is the single-engine
// serve path: per-request streaming callbacks, cancellation, deadlines, and
// governor admission all work unchanged, and a request's tokens are
// bit-for-bit identical to a solo run whichever shard it lands on (sessions
// never interact), so routing is a pure throughput/capacity decision.
//
// Backpressure: submit() throws when every shard is saturated; try_submit()
// instead returns Rejected{retry_hint} (HTTP-429 style) so a front-end can
// shed load without exceptions. A demand no shard's pool could EVER hold is
// not backpressure — both paths throw, mirroring ServeEngine::submit.
//
// Fault tolerance: every shard engine reports backend faults through its
// failure callback the instant a backend call throws. The router's handler
// (running on the failed shard's driver thread) marks the shard kFailed —
// excluding it from every placement decision and from try_submit's capacity
// math — then harvests the shard's queued AND in-flight requests and fails
// them over to surviving shards. A failed-over request resumes where it
// stopped: the tokens the dead shard already streamed replay as prefill on
// the survivor (rebuilding KV state deterministically) and are never
// re-delivered to on_token — exactly-once per (request, position), with
// ServeResult::failovers recording the displacement. Requests no survivor
// can take resolve with FinishReason::kShardFailure. restart_shard() builds
// a replacement engine in place (kRestarted, immediately serving-eligible).
//
// Threading: submit()/try_submit() are safe from any thread (placement
// decisions serialize on an internal mutex; per-shard load snapshots come
// from ServeEngine::load(), which is written under the shard's stats lock).
// start()/stop()/drain()/restart_shard() are driven from one controlling
// thread. stop() and drain() quiesce all shards in parallel — a cluster
// drains in the time of its slowest shard, not the sum.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/placement.hpp"
#include "model/weights.hpp"
#include "obs/metrics_registry.hpp"
#include "serve/serve_engine.hpp"

namespace efld::cluster {

// Lifecycle of one shard slot. kRestarted is serving-wise identical to
// kHealthy — it only records that the slot's engine is a replacement, so
// stats/benches can tell a recovered cluster from an untouched one.
enum class ShardHealth { kHealthy, kFailed, kRestarted };

[[nodiscard]] constexpr std::string_view to_string(ShardHealth h) noexcept {
    switch (h) {
        case ShardHealth::kHealthy: return "healthy";
        case ShardHealth::kFailed: return "failed";
        case ShardHealth::kRestarted: return "restarted";
    }
    return "healthy";
}

struct ClusterOptions {
    // Every shard serves with this configuration. `shard.overload` (the
    // alert-driven OverloadGovernor, when set) is shared by all shards AND
    // read by the router itself: engaged, it stretches try_submit retry
    // hints by its scale and drops placement to the degraded mode (no
    // prefix-affinity probing) until the firing alert resolves.
    serve::ServeOptions shard;
    std::size_t shards = 2;
    PlacementPolicy placement = PlacementPolicy::kLeastLoaded;
    // Base unit of try_submit's retry hint: the hint scales with the least
    // backlogged shard's in-flight count, so callers back off harder the
    // deeper the cluster-wide queue is.
    std::uint32_t retry_hint_ms = 10;
    // Per-shard fault-injection overrides for chaos tests/benches: shard i
    // serves with fault spec shard_fault_specs[i] (empty string = fault-free;
    // shards past the vector's end inherit shard.fault_spec). A restarted
    // shard's replacement engine is always fault-free — the script killed the
    // device once, not its successors. Must not be longer than `shards`.
    std::vector<std::string> shard_fault_specs;
};

// Per-shard load snapshots plus cluster-wide aggregates. Shards are
// independent engines (one per device in deployment), so the cluster's
// modeled completion time for a drained workload is the SLOWEST shard's busy
// time, not the sum — which is what the aggregate throughput helpers divide
// by.
struct ClusterStats {
    std::vector<serve::ServeLoad> shards;
    // Health + fault/failover counters, taken in the same locked snapshot as
    // the per-shard loads. requests_failed_over counts harvested requests a
    // survivor accepted; requests_lost counts those the ROUTER had to resolve
    // kShardFailure (no survivor could take them) — losses resolved inside an
    // engine (submit races, teardown) appear in the per-shard
    // stats.requests_lost instead.
    std::vector<ShardHealth> health;
    std::size_t shard_failures = 0;
    std::size_t shard_restarts = 0;
    std::size_t requests_failed_over = 0;
    std::size_t requests_lost = 0;
    // Cluster-wide latency digests, derived by merging every shard's latency
    // HISTOGRAMS before summarizing (per-shard percentiles cannot be
    // averaged; bucket merges can). Per-shard digests stay available in
    // shards[i].queue_wait/ttft/e2e.
    obs::LatencySummary queue_wait;
    obs::LatencySummary ttft;
    obs::LatencySummary e2e;

    [[nodiscard]] std::size_t healthy_shards() const noexcept {
        std::size_t n = 0;
        for (const ShardHealth h : health) n += h != ShardHealth::kFailed ? 1 : 0;
        return n;
    }
    [[nodiscard]] std::size_t requests_resumed() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.requests_resumed;
        return n;
    }
    [[nodiscard]] std::size_t replayed_tokens() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.replayed_tokens;
        return n;
    }

    [[nodiscard]] std::size_t queued() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.queued;
        return n;
    }
    [[nodiscard]] std::size_t active() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.active;
        return n;
    }
    [[nodiscard]] std::size_t generated_tokens() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.generated_tokens;
        return n;
    }
    [[nodiscard]] std::size_t requests_completed() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.requests_completed;
        return n;
    }
    [[nodiscard]] std::size_t committed_pages() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.committed_pages;
        return n;
    }
    [[nodiscard]] std::size_t total_pages() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.total_pages;
        return n;
    }
    [[nodiscard]] std::size_t capacity_deferrals() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.capacity_deferrals;
        return n;
    }
    [[nodiscard]] std::size_t queue_promotions() const noexcept {
        std::size_t n = 0;
        for (const auto& s : shards) n += s.stats.queue_promotions;
        return n;
    }
    // Slowest shard's host time inside decode steps — the cluster's modeled
    // wall completion time with one core/device per shard.
    [[nodiscard]] double max_wall_ns() const noexcept {
        double m = 0.0;
        for (const auto& s : shards) m = s.stats.wall_ns > m ? s.stats.wall_ns : m;
        return m;
    }
    // Slowest shard's modeled device time (accel backend).
    [[nodiscard]] double max_simulated_ns() const noexcept {
        double m = 0.0;
        for (const auto& s : shards) {
            m = s.stats.simulated_ns > m ? s.stats.simulated_ns : m;
        }
        return m;
    }
    // Aggregate serving throughput with each shard on its own device: total
    // tokens over the slowest shard's busy time.
    [[nodiscard]] double isolated_tokens_per_s() const noexcept {
        const double ns = max_wall_ns();
        return ns > 0.0 ? static_cast<double>(generated_tokens()) * 1e9 / ns : 0.0;
    }
    [[nodiscard]] double simulated_cluster_tokens_per_s() const noexcept {
        const double ns = max_simulated_ns();
        return ns > 0.0 ? static_cast<double>(generated_tokens()) * 1e9 / ns : 0.0;
    }
};

class ClusterRouter {
public:
    // Builds opts.shards independent ServeEngines over the same (non-owning)
    // weights — each shard constructs its own backend through
    // engine::make_backend, and its own governor when paging. Throws
    // std::invalid_argument on zero shards or invalid shard options.
    ClusterRouter(const model::QuantizedModelWeights& weights, ClusterOptions opts);

    // Stops every shard driver (parking any shard errors) before teardown.
    ~ClusterRouter();

    ClusterRouter(const ClusterRouter&) = delete;
    ClusterRouter& operator=(const ClusterRouter&) = delete;

    // Starts every shard's background driver. Throws if already started.
    void start();
    // Parallel-quiesces all shards: each driver joins on its own thread; the
    // first parked shard error (a callback exception) is rethrown after every
    // shard has stopped. Idempotent.
    void stop();
    [[nodiscard]] bool running() const noexcept {
        return running_.load(std::memory_order_acquire);
    }

    // Routes the request to the placement policy's shard and submits it
    // there; the returned handle streams/cancels/awaits exactly as on a
    // single engine. Throws efld::Error when every shard is saturated (use
    // try_submit for backpressure) or when no shard's pool could ever hold
    // the demand.
    serve::RequestHandle submit(serve::Request req);

    // Non-throwing admission: 429-style backpressure instead of an exception
    // when every eligible shard's queue is full. `retry_hint` scales with the
    // cluster's backlog. Still throws on a demand no shard could EVER hold
    // (that is a malformed request, not transient pressure).
    struct SubmitOutcome {
        bool accepted = false;
        serve::RequestHandle handle;           // valid when accepted
        std::size_t shard = kNoShard;          // where it landed
        std::chrono::milliseconds retry_hint{0};  // when rejected
    };
    SubmitOutcome try_submit(serve::Request req);

    // Blocks until every shard is idle (queue empty, no active sessions).
    // Shards drain in parallel; without start() each drains inline on its own
    // thread, so manual-stepping clusters drain multi-threaded too.
    void drain();

    // Replaces a FAILED shard's engine with a freshly built one (same shard
    // options, fault spec cleared — the replacement is not scripted to die).
    // Joins the dead engine's driver first, starts the replacement's driver
    // when the cluster is running, and marks the slot kRestarted — it is
    // serving-eligible from the moment this returns. Throws efld::Error when
    // the shard is not in kFailed (restarting a live engine would drop its
    // work), std::out_of_range on a bad index. Controlling-thread only, like
    // start()/stop().
    void restart_shard(std::size_t i);
    // Post-failure observer (the flight recorder's shard-kill trigger):
    // invoked once per shard failure, AFTER the failover sweep has resolved
    // or re-placed every displaced request — so a capture taken inside the
    // callback sees the harvest/resubmit trace events. Runs on the dying
    // shard's driver thread; register before start().
    using FailureObserver = std::function<void(std::size_t shard)>;
    void set_failure_observer(FailureObserver cb);
    // The slot's health, and the backend fault that killed it (null unless a
    // failure was recorded; cleared again by restart_shard — the fault
    // belonged to the corpse, not the replacement). Safe from any thread.
    [[nodiscard]] ShardHealth shard_health(std::size_t i) const;
    [[nodiscard]] std::exception_ptr shard_error(std::size_t i) const;

    // One load snapshot per shard, taken live (safe while drivers run).
    [[nodiscard]] ClusterStats stats() const;

    // Cluster metrics for exposition (the kMetrics wire frame): every
    // shard's metrics_snapshot() merged — counters and histogram buckets
    // sum across shards — plus the router's own placement/failover/health
    // series (cluster_shard_failures, cluster_requests_failed_over,
    // cluster_healthy_shards, ...). Safe from any thread.
    [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

    // Every shard's retained profiler spans in one flat vector (each span
    // already carries its shard id) — the flight recorder's timeline feed.
    // Taken under the placement lock so a restart cannot swap an engine
    // mid-walk. Safe from any thread.
    [[nodiscard]] std::vector<obs::SpanRecord> profiler_spans() const;

    // Cluster timeline as Chrome-trace-event JSON (the kTraceDump wire
    // frame): the shared trace ring's lifecycle events plus every shard's
    // profiler spans, stitched into one Perfetto-loadable file — pid = shard,
    // flow arrows follow a request id across a failover. Empty-but-valid
    // JSON when no trace ring is configured. Safe from any thread.
    [[nodiscard]] std::string trace_json() const;

    [[nodiscard]] std::size_t shard_count() const noexcept {
        return shards_.size();
    }
    [[nodiscard]] serve::ServeEngine& shard(std::size_t i) { return *shards_[i]; }
    [[nodiscard]] const serve::ServeEngine& shard(std::size_t i) const {
        return *shards_[i];
    }
    [[nodiscard]] const ClusterOptions& options() const noexcept { return opts_; }
    [[nodiscard]] std::string_view placement_name() const noexcept {
        return placement_->name();
    }

private:
    // Worst-case page demand of a tokenized prompt on any shard (uniform
    // shard configuration), 0 without paging.
    [[nodiscard]] std::size_t predict_demand(
        std::span<const std::int32_t> prompt_tokens,
        std::size_t max_new_tokens) const;
    // Failure-callback body for shard i: marks it kFailed (idempotent),
    // harvests its unfinished requests, and fails them over to survivors.
    // Runs on the failed shard's driver thread.
    void handle_shard_failure(std::size_t i, const std::exception_ptr& e);
    void wire_failure_callback(std::size_t i);
    [[nodiscard]] const std::string& fault_spec_for(std::size_t i) const;

    ClusterOptions opts_;
    const model::QuantizedModelWeights* weights_ = nullptr;  // for restarts
    std::unique_ptr<Placement> placement_;
    std::vector<std::unique_ptr<serve::ServeEngine>> shards_;
    // place_mu_ serializes placement + enqueue, and guards shards_ slot
    // swaps (restart), health_, shard_errors_, and the fault counters.
    mutable std::mutex place_mu_;
    std::vector<ShardHealth> health_;
    std::vector<std::exception_ptr> shard_errors_;
    std::size_t shard_failures_ = 0;
    std::size_t shard_restarts_ = 0;
    std::size_t requests_failed_over_ = 0;
    std::size_t requests_lost_ = 0;
    FailureObserver failure_observer_;  // guarded by place_mu_
    std::atomic<bool> running_{false};
};

}  // namespace efld::cluster
