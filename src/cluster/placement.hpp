// Load-aware placement: which shard a ClusterRouter routes a request to.
//
// The scale-out unit on embedded parts is MORE DEVICES, each with its own DDR
// bandwidth and capacity budget (the paper's roofline argument caps a single
// device at bandwidth / weight-bytes; Hummingbird's smaller-footprint variant
// makes the same point from the capacity side). A placement policy therefore
// decides over per-shard load snapshots — queue pressure, active sessions,
// and the shard governor's page headroom — never over anything global, so the
// router stays a thin layer in front of N fully independent engines.
//
// Policies:
//   round-robin  — cycle through shards; blind to load, perfectly fair when
//                  requests are uniform. The baseline everything else must
//                  beat.
//   least-loaded — fewest in-flight requests (queued + active). The default:
//                  tracks real pressure, no paging requirement.
//   best-fit     — route to the shard whose governor has the TIGHTEST page
//                  headroom that still fits the request's worst-case demand
//                  (committed + queued demand both count). Classic best-fit
//                  bin packing: small requests top up nearly-full shards,
//                  preserving whole-pool headroom elsewhere for big requests
//                  — maximum capacity utilization in the paper's sense.
//                  Without paging it degenerates to least-loaded.
//   prefix-affinity — route to the eligible shard whose prefix index covers
//                  the most of this prompt (the router fills
//                  prefix_covered_tokens by probing each shard), so sessions
//                  sharing a system prompt pile onto the shard that already
//                  holds its KV pages — sharing only pays when sharers
//                  co-locate. Ties, and prompts no shard has seen, fall back
//                  to the full best-fit logic.
//
// Every policy shares one eligibility rule: a shard whose backend has
// faulted, whose queue is full, or whose pool could never hold the demand,
// is not a candidate. pick() returns kNoShard when no candidate exists — the
// router's 429 backpressure path.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <string_view>

namespace efld::cluster {

inline constexpr std::size_t kNoShard = std::numeric_limits<std::size_t>::max();

// What a placement decision sees of one shard — derived from
// serve::ServeEngine::load() by the router, or synthesized in tests (the
// policies are pure functions of this snapshot, so placement is unit-testable
// without engines).
struct ShardLoad {
    std::size_t queued = 0;           // requests waiting in the shard's queue
    std::size_t queue_capacity = 0;   // shard queue bound
    std::size_t active = 0;           // sessions currently decoding
    bool healthy = true;              // false: backend faulted, serves no more
    bool paging = false;              // shard runs a capacity governor
    std::size_t committed_pages = 0;  // governor ledger (admitted sessions)
    std::size_t queued_pages = 0;     // worst-case demand waiting in the queue
    std::size_t total_pages = 0;      // shard pool size
    std::size_t shared_pages = 0;     // prefix-index pins (charged once)
    // Tokens of THIS request's prompt the shard's prefix index would cover —
    // per-decision, filled by the router's probe (0 when sharing is off or
    // the shard has not served this prefix).
    std::size_t prefix_covered_tokens = 0;

    [[nodiscard]] std::size_t inflight() const noexcept { return queued + active; }
    [[nodiscard]] bool queue_full() const noexcept {
        return queued >= queue_capacity;
    }
    // Pages not yet spoken for by admitted sessions or queued demand.
    [[nodiscard]] std::size_t free_pages() const noexcept {
        const std::size_t spoken_for = committed_pages + queued_pages;
        return spoken_for >= total_pages ? 0 : total_pages - spoken_for;
    }
    // Whether a request of `demand` pages could EVER be admitted here.
    [[nodiscard]] bool ever_fits(std::size_t demand) const noexcept {
        return !paging || demand <= total_pages;
    }
};

enum class PlacementPolicy {
    kRoundRobin,
    kLeastLoaded,
    kBestFitPages,
    kPrefixAffinity,
};

[[nodiscard]] std::string_view to_string(PlacementPolicy p) noexcept;
// Parses "round-robin" / "least-loaded" / "best-fit" / "prefix-affinity";
// throws std::invalid_argument otherwise.
[[nodiscard]] PlacementPolicy placement_policy_from_string(std::string_view name);

class Placement {
public:
    virtual ~Placement() = default;

    // Shard to route a request of worst-case `demand_pages` to (pass 0 when
    // the cluster does not page), or kNoShard when no eligible shard exists.
    // Stateful policies (round-robin) mutate their cursor here; the router
    // serializes calls.
    [[nodiscard]] virtual std::size_t pick(std::span<const ShardLoad> shards,
                                           std::size_t demand_pages) = 0;
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

[[nodiscard]] std::unique_ptr<Placement> make_placement(PlacementPolicy p);

}  // namespace efld::cluster
