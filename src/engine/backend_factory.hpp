// Constructs DecodeBackend implementations from one set of quantized model
// weights, so callers (the serve engine, benches, tests) select the engine
// with an option instead of hard-wiring a concrete type:
//
//   kHost  — model::ReferenceEngine, the fused skinny-GEMM host fast path.
//            Real wall-clock throughput; StepCost::simulated_ns is 0.
//   kAccel — accel::Accelerator, the functional KV260 twin priced by the
//            cycle model. Wall time is simulation overhead; the meaningful
//            number is StepCost::simulated_ns (what the device would take).
//
// The accel backend consumes a PackedModel (the Fig. 4 interleaved DDR
// image), which the factory builds from the quantized weights and the bundle
// owns — callers keep the one-weights-object lifetime model they already
// have for the host path.
#pragma once

#include <memory>
#include <string_view>

#include "accel/accelerator.hpp"
#include "engine/decode_backend.hpp"
#include "model/reference_engine.hpp"
#include "model/weights.hpp"

namespace efld::engine {

enum class BackendKind { kHost, kAccel };

[[nodiscard]] std::string_view to_string(BackendKind kind) noexcept;
// Parses "host" / "accel"; throws std::invalid_argument otherwise.
[[nodiscard]] BackendKind backend_kind_from_string(std::string_view name);

// A backend plus the storage it borrows from: the accel backend's packed DDR
// image lives here (null for the host backend, which reads the quantized
// weights directly). Movable; the backend's internal pointers stay valid
// because both members live behind unique_ptrs.
struct BackendBundle {
    std::unique_ptr<accel::PackedModel> packed;
    std::unique_ptr<DecodeBackend> backend;
};

// Builds the selected backend around `weights` (non-owning for kHost:
// `weights` must outlive the bundle; kAccel copies what it needs into the
// packed image). host_opts.max_batch sizes the slot count for both kinds;
// accel_opts contributes the cycle-model/memory configuration for kAccel.
// A non-empty `fault_spec` (see fault_injection.hpp for the grammar) wraps
// the backend in a FaultInjectingBackend with that scripted schedule, so
// tests and benches can spawn an engine guaranteed to die at step K; throws
// std::invalid_argument on a malformed spec.
[[nodiscard]] BackendBundle make_backend(BackendKind kind,
                                         const model::QuantizedModelWeights& weights,
                                         const model::EngineOptions& host_opts,
                                         accel::AcceleratorOptions accel_opts = {},
                                         std::string_view fault_spec = {});

}  // namespace efld::engine
