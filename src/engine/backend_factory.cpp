#include "engine/backend_factory.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "engine/fault_injection.hpp"

namespace efld::engine {

std::string_view to_string(BackendKind kind) noexcept {
    return kind == BackendKind::kAccel ? "accel" : "host";
}

BackendKind backend_kind_from_string(std::string_view name) {
    if (name == "host") return BackendKind::kHost;
    if (name == "accel") return BackendKind::kAccel;
    throw std::invalid_argument("unknown backend '" + std::string(name) +
                                "' (expected host|accel)");
}

BackendBundle make_backend(BackendKind kind, const model::QuantizedModelWeights& weights,
                           const model::EngineOptions& host_opts,
                           accel::AcceleratorOptions accel_opts,
                           std::string_view fault_spec) {
    // Parse before building: a malformed spec must not cost a packed-model
    // construction just to throw.
    const FaultPlan plan = parse_fault_plan(fault_spec);
    BackendBundle b;
    if (kind == BackendKind::kHost) {
        b.backend = std::make_unique<model::ReferenceEngine>(weights, host_opts);
    } else {
        b.packed =
            std::make_unique<accel::PackedModel>(accel::PackedModel::build(weights));
        accel_opts.max_batch = host_opts.max_batch;
        // The accel twin prices paged KV in the cycle model (per-page bursts);
        // its functional KV storage is host-side scaffolding either way.
        accel_opts.accel.kv_page_tokens = host_opts.kv_page_tokens;
        accel_opts.prefix_sharing = host_opts.prefix_sharing;
        b.backend = std::make_unique<accel::Accelerator>(*b.packed, accel_opts);
    }
    if (!plan.empty()) {
        b.backend = std::make_unique<FaultInjectingBackend>(std::move(b.backend),
                                                            plan);
    }
    return b;
}

}  // namespace efld::engine
