// The engine seam: one slot-based decode interface that every backend —
// the host reference engine, the cycle-accurate accelerator twin, and any
// future SIMD/paged-KV/real-hardware engine — implements, so the serving
// layer and the single-stream runtime drive all of them through the same
// calls.
//
// The contract is deliberately minimal and batched-by-construction:
//
//   - A backend owns `max_batch()` session slots, each an independent KV
//     history + position. Slots are *reserved* before use and *released*
//     (which clears their KV state) when the request retires; reservation is
//     how the serving layer and the backend agree on who owns which cache.
//   - `decode_batch(tokens, slots, logits_out)` advances token i through
//     reserved slot slots[i] for every lane in ONE engine step. Decode is
//     weight-bound, so a backend is expected to pay its weight traffic once
//     per step regardless of lane count — that amortization is the entire
//     point of the seam (see StepCost::weight_walks).
//   - Results must be deterministic and independent of batching: a lane's
//     logits are bit-for-bit what a solo run of the same token stream through
//     the same backend would produce.
//
// After each decode_batch, `last_step_cost()` reports what the step cost:
// host wall time, simulated device time (for backends with a cycle model;
// zero otherwise), and how many streaming passes over the quantized weights
// the step performed. The serving layer aggregates these into its
// tokens/s — wall for the host backend, simulated-KV260 for the accelerator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "model/config.hpp"

namespace efld::obs {
class Profiler;
}  // namespace efld::obs

namespace efld::engine {

// What one decode_batch step cost, in the three currencies this repo cares
// about. weight_walks is fractional by design: a backend that streams only
// part of the weights in a step (e.g. a future layer-pipelined engine) may
// report < 1.
struct StepCost {
    double wall_ns = 0.0;       // host wall-clock inside decode_batch
    double simulated_ns = 0.0;  // modeled device time; 0 when not modeled
    double weight_walks = 0.0;  // streaming passes over the quantized weights
    // Step-phase breakdown of simulated_ns, for backends whose cycle model
    // prices phases separately (the accel twin's TokenTiming). The paper's
    // roofline lives here: mem_bound is DDR-stream time (weights + KV),
    // compute is exposed VPU time not hidden under the streams, overhead is
    // the per-step fixed cost. Backends without a phase model leave zeros;
    // the three phases sum to simulated_ns when modeled.
    double sim_mem_bound_ns = 0.0;
    double sim_compute_ns = 0.0;
    double sim_overhead_ns = 0.0;
};

// Counters a prefix-sharing backend exposes (zeros when the backend does not
// share). hits/covered_tokens count adoptions; pages_shared is the pages the
// backend's index currently pins resident; cow_copies counts private copies
// made when a session diverged into a shared page.
struct PrefixSharingStats {
    std::size_t hits = 0;
    std::size_t covered_tokens = 0;
    std::size_t pages_shared = 0;
    std::size_t cow_copies = 0;
};

class DecodeBackend {
public:
    // Sentinel returned by reserve_slot when every slot is taken.
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

    virtual ~DecodeBackend() = default;

    [[nodiscard]] virtual const model::ModelConfig& config() const noexcept = 0;
    [[nodiscard]] virtual std::size_t max_batch() const noexcept = 0;
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    // Claims a free session slot (fresh KV, position 0); kNoSlot when full.
    [[nodiscard]] virtual std::size_t reserve_slot() = 0;
    // Returns the slot, clearing its KV history and position.
    virtual void release_slot(std::size_t slot) = 0;
    // Tokens already decoded into the slot's KV history.
    [[nodiscard]] virtual std::size_t position(std::size_t slot) const = 0;

    // Advances tokens[i] through slot slots[i] for every lane in one step,
    // writing logits row i (vocab floats, lane-major) into logits_out. Slots
    // must be distinct, reserved, and below max_batch(); logits_out must hold
    // at least tokens.size() * vocab floats.
    virtual void decode_batch(std::span<const std::int32_t> tokens,
                              std::span<const std::size_t> slots,
                              std::span<float> logits_out) = 0;

    // Clears every slot's KV history and position. Reservations survive: this
    // is a state reset (new conversation), not a lifecycle operation.
    virtual void reset() = 0;

    // Cost report for the most recent decode_batch call.
    [[nodiscard]] virtual StepCost last_step_cost() const noexcept = 0;

    // Hands the backend a phase profiler (owned by the serving layer;
    // outlives the backend's use of it, nullptr detaches). Backends that
    // opt in scope their internal phases — attention, for now — so the
    // profiler can split a decode step's cost. Default: ignore it.
    virtual void set_profiler(obs::Profiler* /*profiler*/) {}

    // ---- prefix sharing (optional; default: no sharing) ----
    //
    // A sharing backend keeps a PrefixIndex of full prompt pages it has
    // already computed KV for. The serving layer probes before admission
    // (capacity math), adopts after reserving a slot (skipping prefill for
    // covered tokens), and registers a prompt's pages once its prefill
    // completes. Tokens covered by adoption are NEVER fed through
    // decode_batch — the slot's position starts past them — and gathering
    // from adopted pages is bit-for-bit what re-prefilling would store, so
    // generated tokens stay identical to a no-sharing run.

    // Tokens of `prompt` an adoption would cover right now, capped at
    // `max_cover` (full covered pages, plus up to a partial last page).
    // Pure lookup; no state changes.
    [[nodiscard]] virtual std::size_t probe_prefix(
        std::span<const std::int32_t> /*prompt*/,
        std::size_t /*max_cover*/) const {
        return 0;
    }

    // Maps the longest indexed prefix of `prompt` into the freshly reserved
    // `slot` (position advances past the covered tokens). Returns the tokens
    // covered, <= max_cover; 0 when nothing matched or sharing is off.
    virtual std::size_t adopt_prefix(std::size_t /*slot*/,
                                     std::span<const std::int32_t> /*prompt*/,
                                     std::size_t /*max_cover*/) {
        return 0;
    }

    // Indexes the full pages of `prompt` now resident in `slot` (its prefill
    // just completed), pinning at most `max_new_pages` additional pages.
    // Returns how many pages the index newly pinned.
    virtual std::size_t register_prefix(std::size_t /*slot*/,
                                        std::span<const std::int32_t> /*prompt*/,
                                        std::size_t /*max_new_pages*/) {
        return 0;
    }

    // Drops the whole prefix index, releasing its page pins. Returns pages
    // released — the serving layer's escape hatch when pinned prefixes starve
    // an otherwise-admissible request.
    virtual std::size_t drop_prefix_cache() { return 0; }

    [[nodiscard]] virtual PrefixSharingStats prefix_stats() const { return {}; }
};

// Shared reserve/release bookkeeping for backends: which of the max_batch
// slots are handed out. Backends pair release() with their own session reset.
class SlotLedger {
public:
    SlotLedger() = default;
    explicit SlotLedger(std::size_t n_slots) : used_(n_slots, 0) {}

    // First free slot (marked used), or DecodeBackend::kNoSlot when full.
    [[nodiscard]] std::size_t acquire() noexcept {
        for (std::size_t s = 0; s < used_.size(); ++s) {
            if (used_[s] == 0) {
                used_[s] = 1;
                return s;
            }
        }
        return DecodeBackend::kNoSlot;
    }
    // False when `slot` is out of range or was not reserved.
    [[nodiscard]] bool release(std::size_t slot) noexcept {
        if (slot >= used_.size() || used_[slot] == 0) return false;
        used_[slot] = 0;
        return true;
    }

private:
    std::vector<std::uint8_t> used_;
};

}  // namespace efld::engine
