#include "engine/fault_injection.hpp"

#include <charconv>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace efld::engine {

namespace {

// One clause, split on ':'. "stall:2:50" -> {"stall", "2", "50"}.
std::vector<std::string_view> split(std::string_view s, char sep) {
    std::vector<std::string_view> parts;
    while (true) {
        const std::size_t at = s.find(sep);
        parts.push_back(s.substr(0, at));
        if (at == std::string_view::npos) break;
        s.remove_prefix(at + 1);
    }
    return parts;
}

std::uint64_t parse_u64(std::string_view s, const char* what) {
    std::uint64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc() || ptr != s.data() + s.size()) {
        throw std::invalid_argument("fault spec: bad " + std::string(what) +
                                    " '" + std::string(s) + "'");
    }
    return v;
}

void check_nonzero(std::size_t v, std::string_view clause) {
    if (v == 0) {
        throw std::invalid_argument("fault spec: index in '" + std::string(clause) +
                                    "' must be >= 1 (steps are 1-based)");
    }
}

double parse_prob(std::string_view s) {
    // from_chars<double> is spotty across libstdc++ versions; stod is fine
    // for a config-string parser.
    std::size_t used = 0;
    double p = 0.0;
    try {
        p = std::stod(std::string(s), &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != s.size() || !(p > 0.0) || p > 1.0) {
        throw std::invalid_argument("fault spec: flaky probability '" +
                                    std::string(s) + "' not in (0, 1]");
    }
    return p;
}

}  // namespace

FaultPlan parse_fault_plan(std::string_view spec) {
    FaultPlan plan;
    // An all-whitespace spec is "no injection", like the empty string —
    // this parser sits at the end of config plumbing. Whitespace INSIDE a
    // non-empty spec is still an error: a typo should fail loudly.
    while (!spec.empty() && (spec.front() == ' ' || spec.front() == '\t')) {
        spec.remove_prefix(1);
    }
    while (!spec.empty() && (spec.back() == ' ' || spec.back() == '\t')) {
        spec.remove_suffix(1);
    }
    if (spec.empty()) return plan;
    for (std::string_view clause : split(spec, ',')) {
        const std::vector<std::string_view> f = split(clause, ':');
        if (f[0] == "step" && f.size() == 2) {
            plan.throw_at_step = parse_u64(f[1], "step index");
            check_nonzero(plan.throw_at_step, clause);
        } else if (f[0] == "alloc" && f.size() == 2) {
            plan.throw_at_reservation = parse_u64(f[1], "reservation index");
            check_nonzero(plan.throw_at_reservation, clause);
        } else if (f[0] == "stall" && f.size() == 3) {
            plan.stall_at_step = parse_u64(f[1], "stall step");
            check_nonzero(plan.stall_at_step, clause);
            plan.stall = std::chrono::milliseconds(parse_u64(f[2], "stall ms"));
        } else if (f[0] == "flaky" && f.size() == 3) {
            plan.flaky_p = parse_prob(f[1]);
            plan.flaky_seed = parse_u64(f[2], "flaky seed");
        } else {
            throw std::invalid_argument(
                "fault spec: unknown clause '" + std::string(clause) +
                "' (step:K | alloc:K | stall:K:MS | flaky:P:SEED)");
        }
    }
    return plan;
}

FaultInjectingBackend::FaultInjectingBackend(std::unique_ptr<DecodeBackend> inner,
                                             FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan), rng_(plan.flaky_seed) {
    if (inner_ == nullptr) {
        throw std::invalid_argument("FaultInjectingBackend: null inner backend");
    }
}

void FaultInjectingBackend::die(const std::string& what) {
    dead_ = true;
    throw BackendFault("injected fault: " + what + " (backend '" +
                       std::string(inner_->name()) + "')");
}

std::size_t FaultInjectingBackend::reserve_slot() {
    if (dead_) die("device already dead");
    ++reservations_;
    if (plan_.throw_at_reservation != 0 &&
        reservations_ >= plan_.throw_at_reservation) {
        die("slot allocation failed at reservation " +
            std::to_string(reservations_));
    }
    return inner_->reserve_slot();
}

void FaultInjectingBackend::release_slot(std::size_t slot) {
    // Releasing state on a dead device is a no-op, not a second fault: the
    // serving layer abandons the device wholesale and must be able to tear
    // its bookkeeping down without tripping over the corpse.
    if (dead_) return;
    inner_->release_slot(slot);
}

void FaultInjectingBackend::decode_batch(std::span<const std::int32_t> tokens,
                                         std::span<const std::size_t> slots,
                                         std::span<float> logits_out) {
    if (dead_) die("device already dead");
    ++steps_;
    if (plan_.stall_at_step != 0 && steps_ == plan_.stall_at_step &&
        plan_.stall.count() > 0) {
        std::this_thread::sleep_for(plan_.stall);
    }
    if (plan_.throw_at_step != 0 && steps_ >= plan_.throw_at_step) {
        die("decode step " + std::to_string(steps_));
    }
    if (plan_.flaky_p > 0.0 && rng_.uniform() < plan_.flaky_p) {
        die("flaky decode step " + std::to_string(steps_));
    }
    inner_->decode_batch(tokens, slots, logits_out);
}

}  // namespace efld::engine
