// Deterministic fault injection over the DecodeBackend seam.
//
// The deployment class this repo targets — fleets of small embedded FPGA
// boards — makes individual-device faults the expected case, not the
// exception. The serving layer's failover machinery (shard health states,
// request resubmission, governor commitment release) is only trustworthy if
// it can be exercised on demand, so this decorator wraps any DecodeBackend
// with a *scripted* fault schedule: tests and benches spawn a shard that is
// guaranteed to die at decode step K, refuse its Nth slot reservation, or
// stall for a configured duration — reproducibly, run after run.
//
// Fault spec strings (comma-separated clauses, parsed by parse_fault_plan):
//
//   step:K        — the Kth decode_batch call (1-based) throws BackendFault
//                   BEFORE touching the inner backend (the device died;
//                   no token was produced for that step).
//   alloc:K       — the Kth reserve_slot call throws BackendFault (slot
//                   allocation failed on-device; distinct from a graceful
//                   kNoSlot "full" answer).
//   stall:K:MS    — decode step K completes only after an extra MS
//                   milliseconds (a hung DMA / thermal-throttled board; the
//                   step itself still succeeds).
//   flaky:P:SEED  — every decode step independently throws with probability
//                   P, drawn from a SEEDed xoshiro stream. Deterministic:
//                   the same seed fails at the same steps every run.
//
// "step:3,stall:2:50" stalls step 2 by 50 ms and kills the backend at step 3.
// The empty spec is a no-op plan (the decorator becomes a transparent
// pass-through, useful for wiring tests).
//
// Failure is sticky: once a scripted fault has thrown, every subsequent
// decode_batch/reserve_slot throws too — a dead device does not come back on
// retry; recovery is the cluster's restart_shard path building a fresh
// backend.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/decode_backend.hpp"

namespace efld::engine {

// What a dead backend throws. Derived from efld::Error so generic handlers
// keep working; the serving layer treats ANY exception escaping the backend
// seam as a device fault, but tests assert on this type to prove the fault
// they scripted is the fault they saw.
class BackendFault : public Error {
public:
    explicit BackendFault(const std::string& what) : Error(what) {}
};

// The scripted schedule. Step/reservation indices are 1-based; 0 disables a
// clause. Members mirror the spec grammar above.
struct FaultPlan {
    std::size_t throw_at_step = 0;       // step:K
    std::size_t throw_at_reservation = 0;  // alloc:K
    std::size_t stall_at_step = 0;       // stall:K:MS (step index)
    std::chrono::milliseconds stall{0};  // stall:K:MS (duration)
    double flaky_p = 0.0;                // flaky:P:SEED (per-step probability)
    std::uint64_t flaky_seed = 0;        // flaky:P:SEED (stream seed)

    [[nodiscard]] bool empty() const noexcept {
        return throw_at_step == 0 && throw_at_reservation == 0 &&
               stall_at_step == 0 && flaky_p <= 0.0;
    }
};

// Parses the spec grammar documented above. Throws std::invalid_argument on
// malformed clauses (unknown keyword, K == 0, P outside (0, 1]) so a typo in
// a bench flag fails loudly instead of silently injecting nothing.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view spec);

// The decorator: owns the inner backend, forwards everything, and applies the
// plan. Single-threaded like every DecodeBackend (one serve driver per
// backend); the fault counters are plain members.
class FaultInjectingBackend final : public DecodeBackend {
public:
    FaultInjectingBackend(std::unique_ptr<DecodeBackend> inner, FaultPlan plan);

    [[nodiscard]] const model::ModelConfig& config() const noexcept override {
        return inner_->config();
    }
    [[nodiscard]] std::size_t max_batch() const noexcept override {
        return inner_->max_batch();
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "fault-injecting";
    }
    [[nodiscard]] std::string_view inner_name() const noexcept {
        return inner_->name();
    }

    [[nodiscard]] std::size_t reserve_slot() override;
    void release_slot(std::size_t slot) override;
    [[nodiscard]] std::size_t position(std::size_t slot) const override {
        return inner_->position(slot);
    }

    void decode_batch(std::span<const std::int32_t> tokens,
                      std::span<const std::size_t> slots,
                      std::span<float> logits_out) override;

    void reset() override { inner_->reset(); }

    [[nodiscard]] StepCost last_step_cost() const noexcept override {
        return inner_->last_step_cost();
    }

    void set_profiler(obs::Profiler* profiler) override {
        inner_->set_profiler(profiler);
    }

    // Prefix sharing passes straight through: faults script the decode and
    // reservation paths; the index lives (and dies) with the inner backend.
    [[nodiscard]] std::size_t probe_prefix(std::span<const std::int32_t> prompt,
                                           std::size_t max_cover) const override {
        return inner_->probe_prefix(prompt, max_cover);
    }
    std::size_t adopt_prefix(std::size_t slot, std::span<const std::int32_t> prompt,
                             std::size_t max_cover) override {
        return inner_->adopt_prefix(slot, prompt, max_cover);
    }
    std::size_t register_prefix(std::size_t slot,
                                std::span<const std::int32_t> prompt,
                                std::size_t max_new_pages) override {
        return inner_->register_prefix(slot, prompt, max_new_pages);
    }
    std::size_t drop_prefix_cache() override { return inner_->drop_prefix_cache(); }
    [[nodiscard]] PrefixSharingStats prefix_stats() const override {
        return inner_->prefix_stats();
    }

    // Observability for tests/benches: steps attempted (including the fatal
    // one) and whether a scripted fault has fired.
    [[nodiscard]] std::size_t steps_attempted() const noexcept { return steps_; }
    [[nodiscard]] bool faulted() const noexcept { return dead_; }

private:
    [[noreturn]] void die(const std::string& what);

    std::unique_ptr<DecodeBackend> inner_;
    FaultPlan plan_;
    Xoshiro256 rng_;
    std::size_t steps_ = 0;         // decode_batch calls attempted
    std::size_t reservations_ = 0;  // reserve_slot calls attempted
    bool dead_ = false;             // sticky: a dead device stays dead
};

}  // namespace efld::engine
