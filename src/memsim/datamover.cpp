#include "memsim/datamover.hpp"

#include "common/check.hpp"

namespace efld::memsim {

void Datamover::queue_mm2s(std::uint64_t addr, std::uint64_t bytes) {
    check(bytes > 0, "Datamover: zero-length MM2S descriptor");
    queue_.push_back({addr, bytes, Dir::kRead});
    ++issued_reads_;
}

void Datamover::queue_s2mm(std::uint64_t addr, std::uint64_t bytes) {
    check(bytes > 0, "Datamover: zero-length S2MM descriptor");
    queue_.push_back({addr, bytes, Dir::kWrite});
    ++issued_writes_;
}

Transaction Datamover::pop() {
    check(!queue_.empty(), "Datamover: pop from empty queue");
    Transaction t = queue_.front();
    queue_.pop_front();
    return t;
}

TransactionStream Datamover::drain() {
    TransactionStream stream(queue_.begin(), queue_.end());
    queue_.clear();
    return stream;
}

}  // namespace efld::memsim
