#include "memsim/axi.hpp"

#include <algorithm>

#include "common/bitpack.hpp"
#include "common/check.hpp"

namespace efld::memsim {

AxiPort::AxiPort(AxiPortConfig cfg) : cfg_(cfg) {
    check(cfg_.data_bits % 8 == 0 && cfg_.data_bits > 0, "AxiPortConfig: bad data width");
    check(cfg_.max_burst_beats > 0, "AxiPortConfig: max_burst_beats must be positive");
    check(cfg_.outstanding > 0, "AxiPortConfig: outstanding must be positive");
}

std::vector<AxiBurst> AxiPort::frame(const Transaction& txn) const {
    std::vector<AxiBurst> bursts;
    std::uint64_t addr = txn.addr;
    std::uint64_t remaining = txn.bytes;
    const std::uint64_t max_bytes = cfg_.max_burst_bytes();
    while (remaining > 0) {
        // AXI bursts must not cross a 4 KiB boundary.
        const std::uint64_t to_boundary = 4096 - (addr % 4096);
        const std::uint64_t len = std::min({remaining, max_bytes, to_boundary});
        bursts.push_back({addr, len, txn.dir});
        addr += len;
        remaining -= len;
    }
    return bursts;
}

double AxiPort::busy_ns(const std::vector<AxiBurst>& bursts) const noexcept {
    if (bursts.empty()) return 0.0;
    double clocks = 0.0;
    for (const auto& b : bursts) {
        clocks += static_cast<double>(div_ceil(b.bytes, cfg_.bytes_per_beat()));
    }
    // With N outstanding transactions the issue overhead of all but every
    // N-th burst overlaps data transfer.
    const double exposed_issues =
        static_cast<double>(bursts.size()) / static_cast<double>(cfg_.outstanding);
    clocks += exposed_issues * static_cast<double>(cfg_.issue_overhead_clk);
    return clocks * cfg_.clock_ns();
}

AxiBundle::AxiBundle(AxiBundleConfig cfg) : cfg_(cfg), port_(cfg.port) {
    check(cfg_.num_ports > 0, "AxiBundleConfig: num_ports must be positive");
}

std::vector<Transaction> AxiBundle::split(const Transaction& txn) const {
    std::vector<Transaction> parts;
    parts.reserve(cfg_.num_ports);
    const std::uint64_t beat = cfg_.port.bytes_per_beat();
    // Contiguous quarters, rounded to beat size so each port sees aligned
    // bursts; the final part absorbs the remainder.
    const std::uint64_t base_share =
        (txn.bytes / cfg_.num_ports) / beat * beat;
    std::uint64_t addr = txn.addr;
    std::uint64_t remaining = txn.bytes;
    for (unsigned p = 0; p < cfg_.num_ports; ++p) {
        const bool last = (p + 1 == cfg_.num_ports);
        const std::uint64_t share = last ? remaining : std::min(base_share, remaining);
        if (share > 0) parts.push_back({addr, share, txn.dir});
        addr += share;
        remaining -= share;
    }
    return parts;
}

double AxiBundle::busy_ns(const Transaction& txn) const {
    double worst = 0.0;
    for (const auto& part : split(txn)) {
        worst = std::max(worst, port_.busy_ns(port_.frame(part)));
    }
    return worst;
}

}  // namespace efld::memsim
