// Transaction records and bandwidth statistics shared by the memory models.
#pragma once

#include <cstdint>
#include <vector>

namespace efld::memsim {

enum class Dir : std::uint8_t { kRead, kWrite };

// One logical memory transaction as issued by the datamover (before AXI burst
// framing and DDR command scheduling).
struct Transaction {
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
    Dir dir = Dir::kRead;
};

// Accumulated traffic statistics for a simulated interval.
struct BandwidthStats {
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t transactions = 0;
    std::uint64_t axi_bursts = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    double busy_ns = 0.0;  // time the memory system spent servicing traffic

    [[nodiscard]] std::uint64_t total_bytes() const noexcept {
        return read_bytes + write_bytes;
    }
    // Achieved bandwidth over the busy interval, bytes/second.
    [[nodiscard]] double achieved_bw() const noexcept {
        return busy_ns > 0.0 ? static_cast<double>(total_bytes()) / (busy_ns * 1e-9) : 0.0;
    }

    BandwidthStats& operator+=(const BandwidthStats& o) noexcept {
        read_bytes += o.read_bytes;
        write_bytes += o.write_bytes;
        transactions += o.transactions;
        axi_bursts += o.axi_bursts;
        row_hits += o.row_hits;
        row_misses += o.row_misses;
        busy_ns += o.busy_ns;
        return *this;
    }
};

using TransactionStream = std::vector<Transaction>;

}  // namespace efld::memsim
