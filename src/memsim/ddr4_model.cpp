#include "memsim/ddr4_model.hpp"

#include "common/bitpack.hpp"
#include "common/check.hpp"

namespace efld::memsim {

DdrConfig DdrConfig::kv260_ddr4_2400() {
    DdrConfig cfg;  // defaults are the KV260 part
    return cfg;
}

DdrConfig DdrConfig::zcu102_ddr4_2666() {
    DdrConfig cfg;
    cfg.data_rate_mtps = 2666.0;
    cfg.t_rcd = 19;
    cfg.t_rp = 19;
    cfg.t_cl = 19;
    return cfg;
}

DdrConfig DdrConfig::pynq_z2_ddr3() {
    DdrConfig cfg;
    cfg.data_rate_mtps = 1050.0;
    cfg.bus_bits = 16;
    cfg.banks = 8;
    cfg.row_bytes = 2048;
    cfg.t_rcd = 7;
    cfg.t_rp = 7;
    cfg.t_cl = 7;
    return cfg;
}

Ddr4Model::Ddr4Model(DdrConfig cfg) : cfg_(cfg), banks_(cfg.banks) {
    check(cfg_.banks > 0, "DdrConfig: banks must be positive");
    check(cfg_.bus_bits % 8 == 0 && cfg_.bus_bits > 0, "DdrConfig: bus_bits must be byte aligned");
    check(cfg_.row_bytes > 0, "DdrConfig: row_bytes must be positive");
}

void Ddr4Model::reset() noexcept {
    for (auto& b : banks_) b.open_row = -1;
    has_last_dir_ = false;
}

std::uint64_t Ddr4Model::bank_of(std::uint64_t addr) const noexcept {
    // Rows are striped across banks so that sequential traffic rotates through
    // banks (standard controller address mapping: row-bank-column).
    return (addr / cfg_.row_bytes) % cfg_.banks;
}

std::int64_t Ddr4Model::row_of(std::uint64_t addr) const noexcept {
    return static_cast<std::int64_t>(addr / (cfg_.row_bytes * cfg_.banks));
}

DdrAccessResult Ddr4Model::access(const Transaction& txn) {
    DdrAccessResult res;
    if (txn.bytes == 0) return res;

    double clocks = 0.0;
    clocks += cfg_.cmd_overhead_clk;

    // Bus turnaround when the transfer direction flips.
    if (has_last_dir_ && txn.dir != last_dir_) {
        clocks += (txn.dir == Dir::kWrite) ? cfg_.t_rtw : cfg_.t_wtr;
    }
    last_dir_ = txn.dir;
    has_last_dir_ = true;

    // Walk the transaction row by row. Each row touched either hits the open
    // row (free) or pays precharge + activate. With sequential traffic and
    // banks > 1, the activate of the next row overlaps the data of the
    // previous one — model that by halving the miss penalty when the access
    // continues sequentially into the next bank.
    std::uint64_t addr = txn.addr;
    std::uint64_t remaining = txn.bytes;
    bool first_chunk = true;
    while (remaining > 0) {
        const std::uint64_t bank = bank_of(addr);
        const std::int64_t row = row_of(addr);
        const std::uint64_t row_off = addr % cfg_.row_bytes;
        const std::uint64_t chunk = std::min<std::uint64_t>(remaining, cfg_.row_bytes - row_off);

        if (banks_[bank].open_row == row) {
            ++res.row_hits;
        } else {
            ++res.row_misses;
            double penalty = static_cast<double>(cfg_.t_rp + cfg_.t_rcd);
            if (!first_chunk) {
                // Sequential spill into the next bank: activate overlaps data.
                penalty *= 0.25;
            }
            clocks += penalty;
            banks_[bank].open_row = row;
        }

        // Data clocks: DDR moves 2 beats per clock; partial DRAM bursts still
        // occupy the full BL8 slot (chop granularity).
        const std::uint64_t dram_bursts =
            div_ceil(chunk, cfg_.bytes_per_dram_burst());
        clocks += static_cast<double>(dram_bursts) *
                  (static_cast<double>(cfg_.burst_length) / 2.0);

        addr += chunk;
        remaining -= chunk;
        first_chunk = false;
    }

    res.busy_ns = clocks * cfg_.clock_ns() * (1.0 + cfg_.refresh_overhead);
    return res;
}

BandwidthStats Ddr4Model::run(const TransactionStream& stream) {
    BandwidthStats stats;
    for (const auto& txn : stream) {
        const DdrAccessResult r = access(txn);
        stats.busy_ns += r.busy_ns;
        stats.row_hits += r.row_hits;
        stats.row_misses += r.row_misses;
        ++stats.transactions;
        if (txn.dir == Dir::kRead) {
            stats.read_bytes += txn.bytes;
        } else {
            stats.write_bytes += txn.bytes;
        }
    }
    return stats;
}

}  // namespace efld::memsim
