#include "memsim/memory_system.hpp"

#include <algorithm>

namespace efld::memsim {

MemorySystemConfig MemorySystemConfig::kv260() { return MemorySystemConfig{}; }

double MemorySystemConfig::peak_bytes_per_s() const noexcept {
    return std::min(ddr.peak_bytes_per_s(), axi.peak_bytes_per_s());
}

MemorySystem::MemorySystem(MemorySystemConfig cfg)
    : cfg_(cfg), bundle_(cfg.axi), ddr_(cfg.ddr) {}

void MemorySystem::reset() noexcept {
    ddr_.reset();
    lifetime_ = BandwidthStats{};
}

double MemorySystem::service(const Transaction& txn) {
    if (txn.bytes == 0) return 0.0;

    // AXI side: lock-step bundle busy time.
    const double axi_ns = bundle_.busy_ns(txn);

    // DDR side: the bundle's per-port framing determines the burst stream the
    // controller sees; run each port's bursts through the DDR model.
    double ddr_ns = 0.0;
    std::uint64_t hits = 0, misses = 0, bursts = 0;
    for (const auto& part : bundle_.split(txn)) {
        for (const auto& b : bundle_.port().frame(part)) {
            const DdrAccessResult r = ddr_.access({b.addr, b.bytes, b.dir});
            ddr_ns += r.busy_ns;
            hits += r.row_hits;
            misses += r.row_misses;
            ++bursts;
        }
    }

    const double ns = std::max(axi_ns, ddr_ns);
    lifetime_.busy_ns += ns;
    lifetime_.row_hits += hits;
    lifetime_.row_misses += misses;
    lifetime_.axi_bursts += bursts;
    ++lifetime_.transactions;
    if (txn.dir == Dir::kRead) {
        lifetime_.read_bytes += txn.bytes;
    } else {
        lifetime_.write_bytes += txn.bytes;
    }
    return ns;
}

BandwidthStats MemorySystem::run(const TransactionStream& stream) {
    BandwidthStats stats;
    for (const auto& txn : stream) {
        const std::uint64_t before_hits = lifetime_.row_hits;
        const std::uint64_t before_misses = lifetime_.row_misses;
        const std::uint64_t before_bursts = lifetime_.axi_bursts;
        stats.busy_ns += service(txn);
        stats.row_hits += lifetime_.row_hits - before_hits;
        stats.row_misses += lifetime_.row_misses - before_misses;
        stats.axi_bursts += lifetime_.axi_bursts - before_bursts;
        ++stats.transactions;
        if (txn.dir == Dir::kRead) {
            stats.read_bytes += txn.bytes;
        } else {
            stats.write_bytes += txn.bytes;
        }
    }
    return stats;
}

double MemorySystem::sequential_read_ns(std::uint64_t addr, std::uint64_t bytes) {
    return service({addr, bytes, Dir::kRead});
}

}  // namespace efld::memsim
