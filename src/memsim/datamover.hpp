// MM2S / S2MM datamover command generation.
//
// Models the AXI DataMover inside the MCU: the PS writes a token index over
// AXI-Lite, the command generator walks the weight/KV layout and emits
// memory-to-stream (MM2S) and stream-to-memory (S2MM) descriptors. Here a
// descriptor is a Transaction; the queue preserves issue order, which is what
// the DDR model consumes.
#pragma once

#include <cstdint>
#include <deque>

#include "memsim/traffic.hpp"

namespace efld::memsim {

class Datamover {
public:
    // Queue a memory-to-stream (read) descriptor.
    void queue_mm2s(std::uint64_t addr, std::uint64_t bytes);
    // Queue a stream-to-memory (write) descriptor.
    void queue_s2mm(std::uint64_t addr, std::uint64_t bytes);

    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

    // Pops the oldest descriptor.
    [[nodiscard]] Transaction pop();

    // Drains the queue into a stream (issue order preserved).
    [[nodiscard]] TransactionStream drain();

    // Descriptor counters (for tests and the Fig. 4 experiment).
    [[nodiscard]] std::uint64_t issued_reads() const noexcept { return issued_reads_; }
    [[nodiscard]] std::uint64_t issued_writes() const noexcept { return issued_writes_; }

private:
    std::deque<Transaction> queue_;
    std::uint64_t issued_reads_ = 0;
    std::uint64_t issued_writes_ = 0;
};

}  // namespace efld::memsim
