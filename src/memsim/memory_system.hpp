// End-to-end memory system: datamover descriptors -> AXI bundle -> DDR4.
//
// This is the substrate the accelerator's cycle model queries: "how long does
// this transaction stream take?" Both sides run at ~19.2 GB/s peak on the
// KV260, so the service time of a descriptor is the max of the AXI-side and
// DDR-side busy times (they pipeline against each other).
#pragma once

#include <cstdint>

#include "memsim/axi.hpp"
#include "memsim/ddr4_model.hpp"
#include "memsim/traffic.hpp"

namespace efld::memsim {

struct MemorySystemConfig {
    DdrConfig ddr = DdrConfig::kv260_ddr4_2400();
    AxiBundleConfig axi{};  // 4 x 128-bit @ 300 MHz by default

    [[nodiscard]] static MemorySystemConfig kv260();
    // Peak of the narrower side (on KV260 both are 19.2 GB/s).
    [[nodiscard]] double peak_bytes_per_s() const noexcept;
};

class MemorySystem {
public:
    explicit MemorySystem(MemorySystemConfig cfg);

    // Services one logical transaction; returns busy nanoseconds.
    double service(const Transaction& txn);

    // Services a whole stream, accumulating statistics.
    BandwidthStats run(const TransactionStream& stream);

    // Convenience: time to stream `bytes` sequentially from `addr`.
    double sequential_read_ns(std::uint64_t addr, std::uint64_t bytes);

    void reset() noexcept;

    [[nodiscard]] const MemorySystemConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] double peak_bytes_per_s() const noexcept { return cfg_.peak_bytes_per_s(); }

    // Lifetime statistics across all service() / run() calls.
    [[nodiscard]] const BandwidthStats& lifetime_stats() const noexcept { return lifetime_; }

private:
    MemorySystemConfig cfg_;
    AxiBundle bundle_;
    Ddr4Model ddr_;
    BandwidthStats lifetime_;
};

}  // namespace efld::memsim
