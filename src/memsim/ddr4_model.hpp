// Cycle-approximate DDR4 timing model.
//
// Substitutes for the KV260's PS-side 64-bit DDR4-2400 (19.2 GB/s peak). The
// decode-speed experiments in the paper are entirely about how close a
// transaction stream gets to that peak, which is governed by:
//   - row-buffer locality  (sequential bursts hit open rows; jumps pay
//     precharge + activate),
//   - command/bus overheads per burst (short bursts amortize poorly),
//   - refresh (tRFC every tREFI steals a fixed fraction).
// The model tracks open rows per bank, charges JEDEC-style penalties in
// memory-clock cycles, and reports busy time in nanoseconds.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/traffic.hpp"

namespace efld::memsim {

struct DdrConfig {
    double data_rate_mtps = 2400.0;  // MT/s (two beats per memory clock)
    unsigned bus_bits = 64;          // data bus width
    unsigned burst_length = 8;       // BL8: one DRAM burst = 8 beats
    unsigned banks = 16;             // bank count (4 bank groups x 4)
    std::uint64_t row_bytes = 8192;  // effective row-buffer footprint per bank

    // Core timings in memory-clock cycles (DDR4-2400 CL17 grade, rounded).
    unsigned t_rcd = 17;  // activate -> read/write
    unsigned t_rp = 17;   // precharge
    unsigned t_cl = 17;   // CAS latency (pipelined away on back-to-back reads)
    unsigned t_rtw = 8;   // read -> write bus turnaround
    unsigned t_wtr = 10;  // write -> read turnaround

    // Per-AXI-burst command overhead that cannot be pipelined away by the
    // controller (arbitration, command bus contention). Charged once per
    // burst; dominant for short scattered transfers.
    unsigned cmd_overhead_clk = 2;

    // Fraction of time lost to refresh: tRFC(350ns)/tREFI(7.8us) ~= 4.5%,
    // partially hidden by bank parallelism in real controllers.
    double refresh_overhead = 0.032;

    [[nodiscard]] double clock_ghz() const noexcept { return data_rate_mtps / 2.0 / 1000.0; }
    [[nodiscard]] double clock_ns() const noexcept { return 1.0 / clock_ghz(); }
    [[nodiscard]] double peak_bytes_per_s() const noexcept {
        return data_rate_mtps * 1e6 * (bus_bits / 8.0);
    }
    [[nodiscard]] std::uint64_t bytes_per_beat() const noexcept { return bus_bits / 8; }
    [[nodiscard]] std::uint64_t bytes_per_dram_burst() const noexcept {
        return bytes_per_beat() * burst_length;
    }

    // Presets used across the experiment suite.
    [[nodiscard]] static DdrConfig kv260_ddr4_2400();
    [[nodiscard]] static DdrConfig zcu102_ddr4_2666();
    [[nodiscard]] static DdrConfig pynq_z2_ddr3();
};

// Result of pushing one transaction through the model.
struct DdrAccessResult {
    double busy_ns = 0.0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
};

class Ddr4Model {
public:
    explicit Ddr4Model(DdrConfig cfg);

    // Services one AXI-burst-sized transaction; updates open-row state.
    DdrAccessResult access(const Transaction& txn);

    // Services a whole stream in order and accumulates statistics.
    BandwidthStats run(const TransactionStream& stream);

    void reset() noexcept;

    [[nodiscard]] const DdrConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] double peak_bytes_per_s() const noexcept { return cfg_.peak_bytes_per_s(); }

    // Efficiency of a stream relative to the data-sheet peak.
    [[nodiscard]] static double efficiency(const BandwidthStats& s, const DdrConfig& cfg) noexcept {
        if (s.busy_ns <= 0.0) return 0.0;
        return s.achieved_bw() / cfg.peak_bytes_per_s();
    }

private:
    struct BankState {
        std::int64_t open_row = -1;
    };

    [[nodiscard]] std::uint64_t bank_of(std::uint64_t addr) const noexcept;
    [[nodiscard]] std::int64_t row_of(std::uint64_t addr) const noexcept;

    DdrConfig cfg_;
    std::vector<BankState> banks_;
    Dir last_dir_ = Dir::kRead;
    bool has_last_dir_ = false;
};

}  // namespace efld::memsim
