// AXI high-performance port model (Zynq UltraScale+ S_AXI_HP).
//
// The paper's MCU attaches four 128-bit HP ports at 300 MHz so the PL can
// consume the full 19.2 GB/s of the PS DDR. This model frames logical
// transactions into AXI bursts (max 256 beats, never crossing a 4 KiB
// boundary), charges per-burst issue overhead that pipelining mostly hides
// when several transactions are outstanding, and reports port busy time.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/traffic.hpp"

namespace efld::memsim {

struct AxiPortConfig {
    unsigned data_bits = 128;       // HP port width
    double clock_mhz = 300.0;       // PL clock
    unsigned max_burst_beats = 256; // AXI4 INCR limit
    unsigned outstanding = 8;       // accepted-but-unfinished transactions
    unsigned issue_overhead_clk = 8;  // AR/AW handshake + first-data latency

    [[nodiscard]] double clock_ns() const noexcept { return 1000.0 / clock_mhz; }
    [[nodiscard]] std::uint64_t bytes_per_beat() const noexcept { return data_bits / 8; }
    [[nodiscard]] double peak_bytes_per_s() const noexcept {
        return clock_mhz * 1e6 * static_cast<double>(bytes_per_beat());
    }
    [[nodiscard]] std::uint64_t max_burst_bytes() const noexcept {
        return std::min<std::uint64_t>(bytes_per_beat() * max_burst_beats, 4096);
    }
};

// One framed AXI burst, ready for the DDR model.
struct AxiBurst {
    std::uint64_t addr = 0;
    std::uint64_t bytes = 0;
    Dir dir = Dir::kRead;
};

class AxiPort {
public:
    explicit AxiPort(AxiPortConfig cfg);

    // Splits a logical transaction into AXI-legal bursts.
    [[nodiscard]] std::vector<AxiBurst> frame(const Transaction& txn) const;

    // Port-side busy time for a stream of bursts: data beats plus the
    // fraction of issue overhead that outstanding-transaction pipelining
    // cannot hide.
    [[nodiscard]] double busy_ns(const std::vector<AxiBurst>& bursts) const noexcept;

    [[nodiscard]] const AxiPortConfig& config() const noexcept { return cfg_; }

private:
    AxiPortConfig cfg_;
};

// Four HP ports operated in lock-step to form one 512-bit stream.
//
// The datamover splits every command four ways (contiguous quarters); the
// "Data Synchronize" stage reassembles 512-bit words. The bundle's effective
// throughput is limited by the slowest port (they run in lock-step) and by
// the DDR behind them.
struct AxiBundleConfig {
    AxiPortConfig port;
    unsigned num_ports = 4;

    [[nodiscard]] double peak_bytes_per_s() const noexcept {
        return port.peak_bytes_per_s() * num_ports;
    }
    [[nodiscard]] std::uint64_t stream_bytes_per_clk() const noexcept {
        return port.bytes_per_beat() * num_ports;  // 64 B => 512-bit words
    }
};

class AxiBundle {
public:
    explicit AxiBundle(AxiBundleConfig cfg);

    // Splits a logical transaction into per-port sub-transactions
    // (contiguous quarters, bus-word aligned where possible).
    [[nodiscard]] std::vector<Transaction> split(const Transaction& txn) const;

    // Busy time of the bundle for one logical transaction (lock-step: the
    // max over ports of per-port busy time).
    [[nodiscard]] double busy_ns(const Transaction& txn) const;

    [[nodiscard]] const AxiBundleConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] const AxiPort& port() const noexcept { return port_; }

private:
    AxiBundleConfig cfg_;
    AxiPort port_;
};

}  // namespace efld::memsim
