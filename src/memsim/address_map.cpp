#include "memsim/address_map.hpp"

#include "common/bitpack.hpp"
#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace efld::memsim {

namespace {
constexpr std::uint64_t kLowBase = 0x0000'0000ull;
constexpr std::uint64_t kLowLimit = 0x7FF0'0000ull;
constexpr std::uint64_t kHighBase = 0x8000'0000ull;
constexpr std::uint64_t kHighLimit = 0x1'0000'0000ull;
constexpr std::uint64_t kFirmwareReserve = 1 * kMiB;
}  // namespace

AddressMap::AddressMap(Window low, Window high, std::uint64_t reserved)
    : low_(low), high_(high), reserved_(reserved) {}

AddressMap AddressMap::kv260_bare_metal() {
    Window low{kLowBase, kLowLimit, kLowBase + kFirmwareReserve};
    Window high{kHighBase, kHighLimit, kHighBase};
    return AddressMap(low, high, kFirmwareReserve);
}

AddressMap AddressMap::generic(std::uint64_t total_bytes, std::uint64_t reserved_bytes) {
    check(total_bytes > reserved_bytes, "AddressMap: reservation exceeds capacity");
    const std::uint64_t half = total_bytes / 2;
    Window low{0, half, reserved_bytes};
    Window high{half, total_bytes, half};
    return AddressMap(low, high, reserved_bytes);
}

Region AddressMap::allocate(const std::string& name, std::uint64_t bytes,
                            Placement placement) {
    check(bytes > 0, "AddressMap: zero-size region '" + name + "'");
    const std::uint64_t aligned = align_up(bytes, 64);

    auto try_window = [&](Window& w) -> std::optional<Region> {
        if (w.free_bytes() < aligned) return std::nullopt;
        Region r{name, w.cursor, aligned};
        w.cursor += aligned;
        return r;
    };

    std::optional<Region> placed;
    switch (placement) {
        case Placement::kLow:
            placed = try_window(low_);
            break;
        case Placement::kHigh:
            placed = try_window(high_);
            break;
        case Placement::kAny:
            // Prefer the high window (the paper fills it first with the
            // embedding table and early-layer weights/KV).
            placed = try_window(high_);
            if (!placed) placed = try_window(low_);
            break;
    }
    check(placed.has_value(),
          "AddressMap: out of memory placing '" + name + "' (" +
              std::to_string(bytes) + " bytes)");
    regions_.push_back(*placed);
    return *placed;
}

std::optional<Region> AddressMap::find(const std::string& name) const {
    for (const auto& r : regions_) {
        if (r.name == name) return r;
    }
    return std::nullopt;
}

std::uint64_t AddressMap::total_capacity() const noexcept {
    return low_.capacity() + high_.capacity();
}

std::uint64_t AddressMap::allocated_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : regions_) total += r.bytes;
    return total;
}

double AddressMap::utilization() const noexcept {
    const std::uint64_t cap = total_capacity();
    if (cap == 0) return 0.0;
    return static_cast<double>(allocated_bytes()) / static_cast<double>(cap);
}

}  // namespace efld::memsim
