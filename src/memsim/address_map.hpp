// Bare-metal address map of the KV260 (Fig. 1 / §VII.A).
//
// The Zynq UltraScale+ exposes its 4 GiB of PS DDR as two windows:
//   low  window: 0x0000'0000 .. 0x7FF0'0000   (2047 MiB; the first 1 MiB
//                holds the bare-metal program and stack)
//   high window: 0x8000'0000 .. 0x1'0000'0000 (2048 MiB)
// The paper places the embedding table, part of the weights, and the KV cache
// of the first 16 layers in the high window and the rest in the low window.
// AddressMap allocates named regions inside the two windows and reports
// capacity utilization — the 93.3 % headline number.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace efld::memsim {

struct Region {
    std::string name;
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;

    [[nodiscard]] std::uint64_t end() const noexcept { return base + bytes; }
};

struct Window {
    std::uint64_t base = 0;
    std::uint64_t limit = 0;  // exclusive
    std::uint64_t cursor = 0;

    [[nodiscard]] std::uint64_t free_bytes() const noexcept { return limit - cursor; }
    [[nodiscard]] std::uint64_t capacity() const noexcept { return limit - base; }
};

class AddressMap {
public:
    enum class Placement { kLow, kHigh, kAny };

    // KV260 bare-metal layout: 1 MiB reserved at the bottom of the low window.
    [[nodiscard]] static AddressMap kv260_bare_metal();

    // Generic device with `total_bytes` DDR split into equal low/high windows
    // and `reserved_bytes` taken by firmware/OS.
    [[nodiscard]] static AddressMap generic(std::uint64_t total_bytes,
                                            std::uint64_t reserved_bytes);

    // Allocates a 64-byte aligned region; throws Error when neither window
    // fits. Returns the placed region.
    Region allocate(const std::string& name, std::uint64_t bytes,
                    Placement placement = Placement::kAny);

    [[nodiscard]] std::optional<Region> find(const std::string& name) const;

    [[nodiscard]] const std::vector<Region>& regions() const noexcept { return regions_; }
    [[nodiscard]] std::uint64_t total_capacity() const noexcept;
    [[nodiscard]] std::uint64_t allocated_bytes() const noexcept;
    [[nodiscard]] std::uint64_t reserved_bytes() const noexcept { return reserved_; }

    // Allocated / total DDR bytes — the paper's capacity-utilization metric
    // (reserved firmware space counts against utilization).
    [[nodiscard]] double utilization() const noexcept;

private:
    AddressMap(Window low, Window high, std::uint64_t reserved);

    Window low_;
    Window high_;
    std::uint64_t reserved_ = 0;
    std::vector<Region> regions_;
};

}  // namespace efld::memsim
