// Prefix index: chained page hashes -> resident KV pages.
//
// At production scale most traffic shares long system prompts, so the biggest
// remaining capacity win on a fixed DDR budget is storing each shared
// prefix's KV pages ONCE. The index is the lookup half of that deal: it maps
// a hash of the first k FULL pages of a prompt's tokens to the physical page
// holding that span's computed KV state, so a new session whose prompt starts
// with an already-served prefix adopts those pages instead of re-prefilling
// them.
//
// Hashes chain: page k's key folds page k-1's key into an FNV-1a walk over
// page k's token ids, so equal keys imply an identical token PATH from the
// prompt start — two prompts that differ anywhere before page k can never
// collide into sharing page k (up to 64-bit hash collisions, the standard
// paged-attention trade). Only full pages index; a partial tail page is
// private by construction.
//
// Ownership: the index is bookkeeping over a KvBlockPool. Every entry holds
// one pool reference on its page (taken by the caller via retain_page at
// insert, dropped at clear/erase time by the caller via release_page) — the
// caller owns the refcount discipline and the locking; the index is a plain
// map. This mirrors KvBlockPool's pure-bookkeeping stance: physical KV bytes
// live in the arenas.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace efld::prefix {

// Chained FNV-1a keys for every FULL page of `tokens`: out[k] covers
// tokens [0, (k+1)*page_tokens). Empty when tokens holds less than one page.
[[nodiscard]] std::vector<std::uint64_t> prefix_chain_hashes(
    std::span<const std::int32_t> tokens, std::size_t page_tokens);

class PrefixIndex {
public:
    struct Entry {
        std::size_t page = 0;       // physical pool page holding this span's KV
        std::uint64_t parent = 0;   // previous link's key (0 for the first page)
        std::size_t depth = 0;      // pages from the prompt start (0-based)
    };

    // Longest indexed chain matching `hashes` front-to-back: the physical
    // pages for hashes[0..n), stopping at the first miss. Never returns a
    // gap — a chain is only walkable while every link is present.
    [[nodiscard]] std::vector<std::size_t> match(
        std::span<const std::uint64_t> hashes) const;

    [[nodiscard]] bool contains(std::uint64_t hash) const {
        return entries_.find(hash) != entries_.end();
    }

    // Registers `page` under `hash` as depth `depth` (parent = the previous
    // link's hash, 0 at depth 0). Returns false without touching anything
    // when the hash is already indexed, or when the parent link is absent —
    // chains must be inserted root-first so match() never walks a gap.
    bool insert(std::uint64_t hash, std::size_t page, std::uint64_t parent,
                std::size_t depth);

    // Pages the index currently pins (one pool reference each).
    [[nodiscard]] std::size_t pages_held() const { return entries_.size(); }

    // Drops every entry, returning the pages so the caller can release each
    // pool reference. The capacity-pressure escape hatch: a pool starved by
    // pinned prefixes dumps the cache rather than refuse admissible work.
    [[nodiscard]] std::vector<std::size_t> clear();

private:
    std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace efld::prefix
