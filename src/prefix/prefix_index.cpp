#include "prefix/prefix_index.hpp"

namespace efld::prefix {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
        h ^= (v >> shift) & 0xffu;
        h *= kFnvPrime;
    }
    return h;
}

}  // namespace

std::vector<std::uint64_t> prefix_chain_hashes(std::span<const std::int32_t> tokens,
                                               std::size_t page_tokens) {
    std::vector<std::uint64_t> out;
    if (page_tokens == 0) return out;
    out.reserve(tokens.size() / page_tokens);
    std::uint64_t h = kFnvOffset;
    for (std::size_t k = 0; (k + 1) * page_tokens <= tokens.size(); ++k) {
        // Fold this page's tokens into the running walk: page k's key commits
        // to every token in [0, (k+1)*page_tokens).
        for (std::size_t i = k * page_tokens; i < (k + 1) * page_tokens; ++i) {
            h = fnv1a_u32(h, static_cast<std::uint32_t>(tokens[i]));
        }
        // 0 is the "no parent" sentinel; remap the (vanishingly unlikely)
        // genuine 0 so a chain key is never ambiguous.
        out.push_back(h == 0 ? kFnvOffset : h);
    }
    return out;
}

std::vector<std::size_t> PrefixIndex::match(
    std::span<const std::uint64_t> hashes) const {
    std::vector<std::size_t> pages;
    for (const std::uint64_t h : hashes) {
        const auto it = entries_.find(h);
        if (it == entries_.end()) break;
        pages.push_back(it->second.page);
    }
    return pages;
}

bool PrefixIndex::insert(std::uint64_t hash, std::size_t page, std::uint64_t parent,
                         std::size_t depth) {
    if (entries_.find(hash) != entries_.end()) return false;
    if (depth > 0 && entries_.find(parent) == entries_.end()) return false;
    entries_.emplace(hash, Entry{page, parent, depth});
    return true;
}

std::vector<std::size_t> PrefixIndex::clear() {
    std::vector<std::size_t> pages;
    pages.reserve(entries_.size());
    for (const auto& [h, e] : entries_) pages.push_back(e.page);
    entries_.clear();
    return pages;
}

}  // namespace efld::prefix
