// Packed-model serialization: the "SD-card image" of §VII.A.
//
// The offline flow quantizes a checkpoint, converts it to the Fig. 4A bus
// format and writes a flat image; the bare-metal loader copies it into DDR.
// The image format here is that flat file: a header with the model geometry,
// then every section in load order, each protected by a CRC32.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/packed_model.hpp"

namespace efld::runtime {

inline constexpr std::uint32_t kImageMagic = 0x45464C44;  // "EFLD"
inline constexpr std::uint32_t kImageVersion = 1;

// CRC32 (IEEE 802.3, reflected) over a byte span.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept;

// Serializes a packed model to a flat byte image / restores it.
[[nodiscard]] std::vector<std::uint8_t> serialize_model(const accel::PackedModel& m);
[[nodiscard]] accel::PackedModel deserialize_model(const std::vector<std::uint8_t>& img);

// File variants (SD-card round trip).
void save_model(const accel::PackedModel& m, const std::string& path);
[[nodiscard]] accel::PackedModel load_model(const std::string& path);

}  // namespace efld::runtime
