// End-to-end inference session: tokenizer -> accelerator -> sampler -> UART.
//
// This is the public "application" API a downstream user programs against —
// the software equivalent of the whole Fig. 1 system. It owns a packed model
// (built from synthetic weights or loaded from an image), the accelerator
// simulator, and a sampler, and reports both generated text and the
// simulated KV260 decode rate.
//
// The generation loop drives the accelerator through the engine::DecodeBackend
// seam (reserve a slot once, decode_batch per token, StepCost for timing) —
// the same interface the serving layer batches over — so the single-stream
// and serving paths exercise one engine contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "model/sampler.hpp"
#include "model/tokenizer.hpp"
#include "runtime/serial_console.hpp"

namespace efld::runtime {

struct SessionOptions {
    model::SamplerConfig sampler{};
    accel::AcceleratorOptions accel{};
    bool echo_to_stdout = false;
    // Host-side worker threads for the fused decode fast path: sizes the
    // process-wide ThreadPool::global() that model::ReferenceEngine instances
    // constructed with EngineOptions::threads == 0 borrow (golden-model
    // verification, bench harnesses). 0 leaves the pool as-is.
    std::size_t host_threads = 0;
};

struct GenerationOutput {
    std::string text;
    std::vector<std::int32_t> tokens;
    double simulated_ns = 0.0;

    [[nodiscard]] double simulated_tokens_per_s() const noexcept {
        return simulated_ns > 0.0
                   ? static_cast<double>(tokens.size()) * 1e9 / simulated_ns
                   : 0.0;
    }
};

class InferenceSession {
public:
    // Takes ownership of the packed model.
    InferenceSession(accel::PackedModel model, SessionOptions opts = {});

    // Builds a session around synthetic weights for a config (test/demo path).
    [[nodiscard]] static InferenceSession synthetic(const model::ModelConfig& cfg,
                                                    std::uint64_t seed,
                                                    SessionOptions opts = {});

    // Tokenizes `prompt`, prefills, decodes up to `max_new_tokens`.
    GenerationOutput generate(const std::string& prompt, std::size_t max_new_tokens);

    void reset();

    [[nodiscard]] const model::ModelConfig& config() const noexcept {
        return model_->config;
    }
    [[nodiscard]] const model::ByteTokenizer& tokenizer() const noexcept {
        return tokenizer_;
    }
    [[nodiscard]] const SerialConsole& console() const noexcept { return console_; }
    [[nodiscard]] accel::Accelerator& accelerator() noexcept { return *accel_; }

private:
    std::unique_ptr<accel::PackedModel> model_;
    SessionOptions opts_;
    model::ByteTokenizer tokenizer_;
    std::unique_ptr<accel::Accelerator> accel_;
    model::Sampler sampler_;
    SerialConsole console_;
    std::size_t slot_ = 0;        // DecodeBackend slot held for the session's life
    std::vector<float> logits_;   // last decode step's logits (reused)
};

}  // namespace efld::runtime
