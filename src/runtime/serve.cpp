#include "runtime/serve.hpp"

namespace efld::runtime {

ServeDeployment synthetic_serve(const model::ModelConfig& cfg, std::uint64_t seed,
                                ServeOptions opts) {
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, seed);
    quant::GroupQuantConfig qc;  // W4 group-128, the deployed scheme
    ServeDeployment d;
    d.weights = std::make_unique<model::QuantizedModelWeights>(
        model::QuantizedModelWeights::quantize(fw, qc));
    d.engine = std::make_unique<serve::ServeEngine>(*d.weights, opts);
    return d;
}

ClusterDeployment synthetic_cluster(const model::ModelConfig& cfg,
                                    std::uint64_t seed, ClusterOptions opts) {
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, seed);
    quant::GroupQuantConfig qc;  // W4 group-128, the deployed scheme
    ClusterDeployment d;
    d.weights = std::make_unique<model::QuantizedModelWeights>(
        model::QuantizedModelWeights::quantize(fw, qc));
    d.router = std::make_unique<cluster::ClusterRouter>(*d.weights, opts);
    return d;
}

}  // namespace efld::runtime
