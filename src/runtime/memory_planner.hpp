// Bare-metal memory planning (Fig. 1 / §VII.A).
//
// Decides whether a (model, quantization, context) combination fits a
// device's DDR and reports the capacity-utilization breakdown the paper
// headlines (93.3 % on the KV260). Also answers the planning questions the
// discussion section raises: the largest context that fits, and the largest
// model a hypothetical device could hold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/address_map.hpp"
#include "model/config.hpp"

namespace efld::runtime {

struct PlanRegion {
    std::string name;
    std::uint64_t bytes = 0;
    double pct_of_total = 0.0;
};

struct MemoryPlan {
    bool fits = false;
    std::uint64_t device_bytes = 0;
    std::uint64_t reserved_bytes = 0;   // bare-metal program + firmware
    std::uint64_t weight_bytes = 0;
    std::uint64_t kv_bytes = 0;
    std::uint64_t free_bytes = 0;
    double utilization = 0.0;           // (weights + kv) / device
    std::vector<PlanRegion> regions;
};

class MemoryPlanner {
public:
    // KV260: 4 GiB DDR, 1 MiB firmware reservation, split address windows.
    [[nodiscard]] static MemoryPlan plan_kv260(const model::ModelConfig& cfg,
                                               const model::QuantScheme& scheme);

    [[nodiscard]] static MemoryPlan plan(const model::ModelConfig& cfg,
                                         const model::QuantScheme& scheme,
                                         std::uint64_t device_bytes,
                                         std::uint64_t reserved_bytes);

    // Largest context length (multiple of 16) whose KV cache still fits next
    // to the weights; 0 when even the weights do not fit.
    [[nodiscard]] static std::uint64_t max_context(const model::ModelConfig& cfg,
                                                   const model::QuantScheme& scheme,
                                                   std::uint64_t device_bytes,
                                                   std::uint64_t reserved_bytes);

    // Whether a Linux kernel (~`os_bytes` resident) could coexist — the
    // paper's argument for going bare-metal.
    [[nodiscard]] static bool fits_with_os(const model::ModelConfig& cfg,
                                           const model::QuantScheme& scheme,
                                           std::uint64_t device_bytes,
                                           std::uint64_t os_bytes);
};

}  // namespace efld::runtime
