// Bare-metal host program model (§VII.A).
//
// The PS-side C program the paper describes: copy the converted model image
// from the SD card into DDR (no OS, no filesystem cache — a long sequential
// read at SD-card speed), verify it, set up the address map, then sit in a
// loop feeding token commands to the accelerator over AXI-Lite and reading
// logits back. BareMetalHost reproduces that flow against the simulator and
// reports boot-time numbers a KV260 user would actually experience.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/mcu.hpp"

namespace efld::runtime {

struct SdCardConfig {
    double read_mb_s = 25.0;  // default-speed SDHC sequential read
};

struct BootReport {
    std::uint64_t image_bytes = 0;
    double sd_load_s = 0.0;      // time to stream the image off the SD card
    double ddr_copy_s = 0.0;     // time to place it in DDR at stream rate
    bool crc_ok = false;
    double capacity_utilization = 0.0;  // of the 4 GiB map after placement

    [[nodiscard]] double total_boot_s() const noexcept { return sd_load_s + ddr_copy_s; }
};

class BareMetalHost {
public:
    // Parses + verifies `image` (throws efld::Error on corruption), plans the
    // address map, and brings up the accelerator.
    static BareMetalHost boot(const std::vector<std::uint8_t>& image,
                              SdCardConfig sd = {},
                              accel::AcceleratorOptions opts = {});

    // Executes one AXI-Lite token command; prefill commands run the model but
    // a caller typically ignores their logits.
    accel::StepResult execute(const accel::TokenCommand& cmd);

    [[nodiscard]] const BootReport& report() const noexcept { return report_; }
    [[nodiscard]] accel::Accelerator& accelerator() noexcept { return *accel_; }
    [[nodiscard]] const model::ModelConfig& config() const noexcept {
        return model_->config;
    }

    // Boot-time arithmetic without materializing a model (7B planning).
    [[nodiscard]] static double estimated_sd_load_s(std::uint64_t image_bytes,
                                                    const SdCardConfig& sd) noexcept {
        return static_cast<double>(image_bytes) / (sd.read_mb_s * 1e6);
    }

private:
    BareMetalHost(std::unique_ptr<accel::PackedModel> m, BootReport report,
                  accel::AcceleratorOptions opts);

    std::unique_ptr<accel::PackedModel> model_;
    BootReport report_;
    std::unique_ptr<accel::Accelerator> accel_;
};

}  // namespace efld::runtime
