#include "runtime/memory_planner.hpp"

#include "common/mathutil.hpp"

namespace efld::runtime {

MemoryPlan MemoryPlanner::plan_kv260(const model::ModelConfig& cfg,
                                     const model::QuantScheme& scheme) {
    return plan(cfg, scheme, 4 * kGiB, 1 * kMiB);
}

MemoryPlan MemoryPlanner::plan(const model::ModelConfig& cfg,
                               const model::QuantScheme& scheme,
                               std::uint64_t device_bytes, std::uint64_t reserved_bytes) {
    const model::ModelFootprint f = model::compute_footprint(cfg, scheme);

    MemoryPlan p;
    p.device_bytes = device_bytes;
    p.reserved_bytes = reserved_bytes;
    p.weight_bytes = f.weight_bytes();
    p.kv_bytes = f.kv_total_bytes();
    const std::uint64_t need = p.weight_bytes + p.kv_bytes + reserved_bytes;
    p.fits = need <= device_bytes;
    p.free_bytes = p.fits ? device_bytes - need : 0;
    p.utilization = static_cast<double>(p.weight_bytes + p.kv_bytes) /
                    static_cast<double>(device_bytes);

    auto pct = [&](std::uint64_t b) {
        return 100.0 * static_cast<double>(b) / static_cast<double>(device_bytes);
    };
    p.regions = {
        {"firmware/bare-metal program", reserved_bytes, pct(reserved_bytes)},
        {"embedding table", f.embedding_bytes, pct(f.embedding_bytes)},
        {"transformer weights (W" + std::to_string(scheme.weight_bits) + ")",
         f.layer_weight_bytes, pct(f.layer_weight_bytes)},
        {"lm_head", f.lm_head_bytes, pct(f.lm_head_bytes)},
        {"norm vectors", f.norm_bytes, pct(f.norm_bytes)},
        {"KV cache codes (" + std::to_string(cfg.max_seq_len) + " tok)", f.kv_cache_bytes,
         pct(f.kv_cache_bytes)},
        {"KV scale-zero packs", f.kv_pack_bytes, pct(f.kv_pack_bytes)},
        {"free", p.free_bytes, pct(p.free_bytes)},
    };
    return p;
}

std::uint64_t MemoryPlanner::max_context(const model::ModelConfig& cfg,
                                         const model::QuantScheme& scheme,
                                         std::uint64_t device_bytes,
                                         std::uint64_t reserved_bytes) {
    model::ModelConfig probe = cfg;
    probe.max_seq_len = 16;
    if (!plan(probe, scheme, device_bytes, reserved_bytes).fits) return 0;

    // KV bytes grow linearly in context; binary-search the largest fit.
    std::uint64_t lo = 16, hi = 1u << 20;
    while (lo < hi) {
        const std::uint64_t mid = (lo + hi + 16) / 32 * 16;
        probe.max_seq_len = mid;
        if (plan(probe, scheme, device_bytes, reserved_bytes).fits) {
            lo = mid;
        } else {
            hi = mid - 16;
        }
    }
    return lo;
}

bool MemoryPlanner::fits_with_os(const model::ModelConfig& cfg,
                                 const model::QuantScheme& scheme,
                                 std::uint64_t device_bytes, std::uint64_t os_bytes) {
    return plan(cfg, scheme, device_bytes, os_bytes).fits;
}

}  // namespace efld::runtime
