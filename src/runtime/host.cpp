#include "runtime/host.hpp"

#include "common/check.hpp"
#include "memsim/memory_system.hpp"
#include "runtime/loader.hpp"
#include "runtime/memory_planner.hpp"

namespace efld::runtime {

BareMetalHost::BareMetalHost(std::unique_ptr<accel::PackedModel> m, BootReport report,
                             accel::AcceleratorOptions opts)
    : model_(std::move(m)),
      report_(report),
      accel_(std::make_unique<accel::Accelerator>(*model_, opts)) {}

BareMetalHost BareMetalHost::boot(const std::vector<std::uint8_t>& image,
                                  SdCardConfig sd, accel::AcceleratorOptions opts) {
    BootReport report;
    report.image_bytes = image.size();
    report.sd_load_s = estimated_sd_load_s(image.size(), sd);

    // deserialize_model() verifies the CRC; reaching the next line means ok.
    auto m = std::make_unique<accel::PackedModel>(deserialize_model(image));
    report.crc_ok = true;

    // Placing the image in DDR costs one sequential write pass at stream rate.
    memsim::MemorySystem mem(memsim::MemorySystemConfig::kv260());
    report.ddr_copy_s =
        mem.service({0, image.size(), memsim::Dir::kWrite}) * 1e-9;

    const MemoryPlan plan =
        MemoryPlanner::plan_kv260(m->config, model::QuantScheme::w4a16_kv8());
    check(plan.fits, "BareMetalHost: model does not fit the KV260 memory map");
    report.capacity_utilization = plan.utilization;

    return BareMetalHost(std::move(m), report, opts);
}

accel::StepResult BareMetalHost::execute(const accel::TokenCommand& cmd) {
    return accel_->step(cmd.token_index);
}

}  // namespace efld::runtime
