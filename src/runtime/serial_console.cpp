#include "runtime/serial_console.hpp"

#include <ostream>

namespace efld::runtime {

void SerialConsole::emit(const std::string& text, double sim_time_ns) {
    transcript_ += text;
    stamps_.push_back(sim_time_ns);
    if (echo_ != nullptr) {
        (*echo_) << text << std::flush;
    }
}

void SerialConsole::newline() {
    transcript_ += '\n';
    if (echo_ != nullptr) {
        (*echo_) << '\n';
    }
}

double SerialConsole::tokens_per_s() const noexcept {
    if (stamps_.size() < 2) return 0.0;
    const double span_ns = stamps_.back() - stamps_.front();
    if (span_ns <= 0.0) return 0.0;
    return static_cast<double>(stamps_.size() - 1) * 1e9 / span_ns;
}

}  // namespace efld::runtime
