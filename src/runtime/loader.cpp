#include "runtime/loader.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace efld::runtime {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

class ByteWriter {
public:
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void f32(float v) { raw(&v, sizeof v); }
    void raw(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

class ByteReader {
public:
    explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

    std::uint32_t u32() { return read<std::uint32_t>(); }
    std::uint64_t u64() { return read<std::uint64_t>(); }
    float f32() { return read<float>(); }
    void raw(void* p, std::size_t n) {
        check(pos_ + n <= buf_.size(), "loader: truncated image");
        std::memcpy(p, buf_.data() + pos_, n);
        pos_ += n;
    }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

private:
    template <typename T>
    T read() {
        T v;
        raw(&v, sizeof v);
        return v;
    }
    const std::vector<std::uint8_t>& buf_;
    std::size_t pos_ = 0;
};

void write_fp16_vec(ByteWriter& w, const std::vector<Fp16>& v) {
    w.u64(v.size());
    for (const Fp16 h : v) {
        const std::uint16_t b = h.bits();
        w.raw(&b, sizeof b);
    }
}

std::vector<Fp16> read_fp16_vec(ByteReader& r) {
    std::vector<Fp16> v(r.u64());
    for (auto& h : v) {
        std::uint16_t b;
        r.raw(&b, sizeof b);
        h = Fp16::from_bits(b);
    }
    return v;
}

void write_matrix(ByteWriter& w, const accel::PackedMatrix& m) {
    w.u64(m.rows);
    w.u64(m.cols);
    w.u64(m.stream.size());
    for (const Word512& word : m.stream) {
        w.raw(word.lanes.data(), sizeof word.lanes);
    }
}

accel::PackedMatrix read_matrix(ByteReader& r) {
    accel::PackedMatrix m;
    m.rows = r.u64();
    m.cols = r.u64();
    m.stream.resize(r.u64());
    for (Word512& word : m.stream) {
        r.raw(word.lanes.data(), sizeof word.lanes);
    }
    return m;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) noexcept {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) {
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> serialize_model(const accel::PackedModel& m) {
    ByteWriter body;
    body.u64(m.config.dim);
    body.u64(m.config.n_layers);
    body.u64(m.config.n_heads);
    body.u64(m.config.n_kv_heads);
    body.u64(m.config.hidden_dim);
    body.u64(m.config.vocab_size);
    body.u64(m.config.max_seq_len);
    body.f32(m.config.rope_theta);
    body.f32(m.config.rms_eps);
    body.u32(static_cast<std::uint32_t>(m.config.name.size()));
    body.raw(m.config.name.data(), m.config.name.size());

    write_fp16_vec(body, m.embedding);
    body.u64(m.layers.size());
    for (const auto& l : m.layers) {
        write_matrix(body, l.wq);
        write_matrix(body, l.wk);
        write_matrix(body, l.wv);
        write_matrix(body, l.wo);
        write_matrix(body, l.w_gate);
        write_matrix(body, l.w_up);
        write_matrix(body, l.w_down);
        write_fp16_vec(body, l.attn_norm);
        write_fp16_vec(body, l.mlp_norm);
    }
    write_fp16_vec(body, m.final_norm);
    write_matrix(body, m.lm_head);

    const std::vector<std::uint8_t> payload = body.take();
    ByteWriter img;
    img.u32(kImageMagic);
    img.u32(kImageVersion);
    img.u64(payload.size());
    img.u32(crc32(payload.data(), payload.size()));
    img.raw(payload.data(), payload.size());
    return img.take();
}

accel::PackedModel deserialize_model(const std::vector<std::uint8_t>& img) {
    ByteReader hdr(img);
    check(hdr.u32() == kImageMagic, "loader: bad magic");
    check(hdr.u32() == kImageVersion, "loader: unsupported version");
    const std::uint64_t payload_len = hdr.u64();
    const std::uint32_t expect_crc = hdr.u32();
    check(hdr.position() + payload_len == img.size(), "loader: size mismatch");
    check(crc32(img.data() + hdr.position(), payload_len) == expect_crc,
          "loader: CRC mismatch (corrupt image)");

    std::vector<std::uint8_t> payload(img.begin() + static_cast<std::ptrdiff_t>(hdr.position()),
                                      img.end());
    ByteReader r(payload);
    accel::PackedModel m;
    m.config.dim = r.u64();
    m.config.n_layers = r.u64();
    m.config.n_heads = r.u64();
    m.config.n_kv_heads = r.u64();
    m.config.hidden_dim = r.u64();
    m.config.vocab_size = r.u64();
    m.config.max_seq_len = r.u64();
    m.config.rope_theta = r.f32();
    m.config.rms_eps = r.f32();
    std::string name(r.u32(), '\0');
    r.raw(name.data(), name.size());
    m.config.name = std::move(name);

    m.embedding = read_fp16_vec(r);
    m.layers.resize(r.u64());
    for (auto& l : m.layers) {
        l.wq = read_matrix(r);
        l.wk = read_matrix(r);
        l.wv = read_matrix(r);
        l.wo = read_matrix(r);
        l.w_gate = read_matrix(r);
        l.w_up = read_matrix(r);
        l.w_down = read_matrix(r);
        l.attn_norm = read_fp16_vec(r);
        l.mlp_norm = read_fp16_vec(r);
    }
    m.final_norm = read_fp16_vec(r);
    m.lm_head = read_matrix(r);
    return m;
}

void save_model(const accel::PackedModel& m, const std::string& path) {
    const std::vector<std::uint8_t> img = serialize_model(m);
    std::ofstream f(path, std::ios::binary);
    check(f.good(), "loader: cannot open '" + path + "' for writing");
    f.write(reinterpret_cast<const char*>(img.data()),
            static_cast<std::streamsize>(img.size()));
    check(f.good(), "loader: write failed for '" + path + "'");
}

accel::PackedModel load_model(const std::string& path) {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    check(f.good(), "loader: cannot open '" + path + "'");
    const std::streamsize size = f.tellg();
    f.seekg(0);
    std::vector<std::uint8_t> img(static_cast<std::size_t>(size));
    f.read(reinterpret_cast<char*>(img.data()), size);
    check(f.good(), "loader: read failed for '" + path + "'");
    return deserialize_model(img);
}

}  // namespace efld::runtime
