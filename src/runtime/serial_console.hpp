// Serial console model: the UART the bare-metal program streams tokens to.
//
// Collects decoded text with per-token timestamps (simulated nanoseconds) and
// optionally echoes to a std::ostream — what a user sees on the KV260's
// serial port, including the token rate line the paper reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace efld::runtime {

class SerialConsole {
public:
    explicit SerialConsole(std::ostream* echo = nullptr) : echo_(echo) {}

    void emit(const std::string& text, double sim_time_ns);
    void newline();

    [[nodiscard]] const std::string& transcript() const noexcept { return transcript_; }
    [[nodiscard]] std::size_t tokens_emitted() const noexcept { return stamps_.size(); }

    // Decode rate over the emitted tokens (simulated clock).
    [[nodiscard]] double tokens_per_s() const noexcept;

private:
    std::ostream* echo_;
    std::string transcript_;
    std::vector<double> stamps_;
};

}  // namespace efld::runtime
