#include "runtime/session.hpp"

#include <iostream>
#include <span>

#include "common/check.hpp"
#include "common/threadpool.hpp"
#include "engine/decode_backend.hpp"

namespace efld::runtime {

InferenceSession::InferenceSession(accel::PackedModel model, SessionOptions opts)
    : model_(std::make_unique<accel::PackedModel>(std::move(model))),
      opts_(opts),
      accel_(std::make_unique<accel::Accelerator>(*model_, opts.accel)),
      sampler_(opts.sampler),
      console_(opts.echo_to_stdout ? &std::cout : nullptr) {
    check(static_cast<std::uint64_t>(tokenizer_.vocab_size()) <= model_->config.vocab_size,
          "InferenceSession: model vocab too small for the byte tokenizer");
    if (opts_.host_threads > 0) ThreadPool::set_global_threads(opts_.host_threads);
    // The session holds one backend slot for its whole life (its KV history
    // persists across generate() calls until reset()).
    slot_ = accel_->reserve_slot();
    check(slot_ != engine::DecodeBackend::kNoSlot,
          "InferenceSession: accelerator has no free session slot");
    logits_.resize(model_->config.vocab_size);
}

InferenceSession InferenceSession::synthetic(const model::ModelConfig& cfg,
                                             std::uint64_t seed, SessionOptions opts) {
    const model::ModelWeights fw = model::ModelWeights::synthetic(cfg, seed);
    quant::GroupQuantConfig qc;  // W4 group-128, the deployed scheme
    const model::QuantizedModelWeights qw = model::QuantizedModelWeights::quantize(fw, qc);
    return InferenceSession(accel::PackedModel::build(qw), opts);
}

GenerationOutput InferenceSession::generate(const std::string& prompt,
                                            std::size_t max_new_tokens) {
    const std::vector<std::int32_t> prompt_ids = tokenizer_.encode(prompt);
    check(!prompt_ids.empty(), "InferenceSession: empty prompt after tokenization");

    // Drive the accelerator through the DecodeBackend seam — the same
    // interface the serving layer batches over, here with a single lane.
    engine::DecodeBackend& backend = *accel_;
    auto step_through = [&](std::int32_t id) {
        backend.decode_batch(std::span<const std::int32_t>(&id, 1),
                             std::span<const std::size_t>(&slot_, 1), logits_);
        return backend.last_step_cost().simulated_ns;
    };

    GenerationOutput out;
    for (const std::int32_t id : prompt_ids) (void)step_through(id);

    // Per-token timing attribution: each generated token is billed the decode
    // step that consumes it — NOT the step that produced its logits (the
    // first token's logits fall out of the last *prefill* step, which is
    // TTFT, not decode time). simulated_ns is therefore exactly the sum of
    // the decode steps executed in this loop; the prefill walk is never
    // charged and the final executed step is no longer dropped. An EOS token
    // is sampled but never fed, so it costs no step.
    double sim_ns = 0.0;
    for (std::size_t i = 0;
         i < max_new_tokens && backend.position(slot_) < model_->config.max_seq_len;
         ++i) {
        const std::int32_t next = sampler_.sample(logits_);
        out.tokens.push_back(next);
        if (next == model::ByteTokenizer::kEos) {
            console_.emit(tokenizer_.decode_token(next), sim_ns);
            break;
        }
        sim_ns += step_through(next);
        console_.emit(tokenizer_.decode_token(next), sim_ns);
    }
    console_.newline();
    out.text = tokenizer_.decode(out.tokens);
    out.simulated_ns = sim_ns;
    return out;
}

void InferenceSession::reset() { accel_->reset(); }

}  // namespace efld::runtime
