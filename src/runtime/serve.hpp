// Runtime-facing serve API: re-exports the serve subsystem's types the way
// SessionOptions/InferenceSession are exposed, plus the synthetic-weights
// construction path tests and demos use (mirroring InferenceSession::synthetic).
//
// Backend selection rides in ServeOptions::backend (engine::BackendKind):
// kHost serves on the skinny-GEMM reference engine (wall-clock throughput),
// kAccel on the cycle-priced KV260 twin (stats().simulated_tokens_per_s() is
// the predicted device serving rate). Both sit behind the same
// engine::DecodeBackend seam.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/cluster_router.hpp"
#include "model/weights.hpp"
#include "serve/serve_engine.hpp"

namespace efld::runtime {

using ServeOptions = serve::ServeOptions;
using ServeResult = serve::ServeResult;
using ServeStats = serve::ServeStats;
using ServeLoad = serve::ServeLoad;
using ServeRequest = serve::Request;
using RequestHandle = serve::RequestHandle;
using SchedulerPolicy = serve::SchedulerPolicy;
using BackendKind = engine::BackendKind;
using FinishReason = serve::FinishReason;
using ClusterOptions = cluster::ClusterOptions;
using ClusterStats = cluster::ClusterStats;
using PlacementPolicy = cluster::PlacementPolicy;

// A ServeEngine bundled with the quantized weights it serves (ServeEngine
// itself is non-owning). Movable; engine references stay valid because both
// live behind unique_ptrs.
struct ServeDeployment {
    std::unique_ptr<model::QuantizedModelWeights> weights;
    std::unique_ptr<serve::ServeEngine> engine;
};

// Builds a serve deployment around synthetic weights for a config — the
// serving counterpart of InferenceSession::synthetic (W4 group-128 scheme).
[[nodiscard]] ServeDeployment synthetic_serve(const model::ModelConfig& cfg,
                                              std::uint64_t seed, ServeOptions opts = {});

// A ClusterRouter bundled with the quantized weights its shards serve.
struct ClusterDeployment {
    std::unique_ptr<model::QuantizedModelWeights> weights;
    std::unique_ptr<cluster::ClusterRouter> router;
};

// The cluster counterpart of synthetic_serve: N shards over one set of
// synthetic weights behind a load-aware router.
[[nodiscard]] ClusterDeployment synthetic_cluster(const model::ModelConfig& cfg,
                                                  std::uint64_t seed,
                                                  ClusterOptions opts = {});

}  // namespace efld::runtime
