// Failure flight recorder: a black-box bundle written the moment something
// goes wrong, while the evidence is still in memory.
//
// When a shard dies or an alert starts firing, the interesting state — the
// trace ring's recent lifecycle events, the metrics snapshot, the profiler's
// span timeline, the alert timeline, and the TSDB tail covering the lead-up
// — is all volatile. The FlightRecorder serializes it into one JSON bundle
// per incident under a configured directory:
//
//   {
//     "reason":   "shard_failure:0" | "alert:hot_queue" | ...,
//     "ts_ns":    capture timestamp (injected clock),
//     "seq":      capture ordinal in this process,
//     "metrics":  obs::to_json(snapshot),
//     "alerts":   AlertEngine::to_json() (null without an engine),
//     "trace":    [{ts_ns, request, shard, event, arg}, ...],
//     "profiler_spans": [{phase, shard, begin_ns, end_ns}, ...],
//     "tsdb":     TimeSeriesStore::dump_json over the tail window
//   }
//
// Bundles are capped (max_bundles) so a flapping alert cannot fill the disk,
// and captures within min_interval_ns of the previous one are coalesced into
// it (suppressed) — incidents cluster, recordings should not.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/alert_engine.hpp"
#include "obs/clock.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/time_series.hpp"
#include "obs/trace.hpp"

namespace efld::obs {

class FlightRecorder {
public:
    struct Options {
        std::string dir;                 // bundle directory (must exist or be creatable)
        const Clock* clock = nullptr;    // null = process steady clock
        std::uint64_t tail_window_ns = 120'000'000'000ull;  // TSDB tail: 2 min
        std::size_t max_bundles = 32;
        std::uint64_t min_interval_ns = 1'000'000'000;  // coalesce within 1s
    };

    explicit FlightRecorder(Options opts);
    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    // Serializes one bundle; any source may be null/empty. Returns the path
    // written, or "" when the capture was suppressed (cap / coalescing) or
    // the write failed.
    std::string capture(const std::string& reason,
                        const MetricsSnapshot& metrics,
                        const std::vector<TraceRecord>& trace,
                        const std::vector<SpanRecord>& spans,
                        const AlertEngine* alerts,
                        const TimeSeriesStore* store);

    [[nodiscard]] std::uint64_t captures() const;
    [[nodiscard]] std::uint64_t suppressed() const;
    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_;
    const Clock* clock_;
    mutable std::mutex mu_;
    std::uint64_t seq_ = 0;
    std::uint64_t suppressed_ = 0;
    std::uint64_t last_capture_ns_ = 0;
    bool captured_once_ = false;
};

}  // namespace efld::obs
