#include "obs/rolling_window.hpp"

#include <algorithm>

namespace efld::obs {

void WindowSnapshot::merge(const WindowSnapshot& other) {
    if (window_ns == 0) window_ns = other.window_ns;
    if (other.count > 0) {
        min = count == 0 ? other.min : std::min(min, other.min);
        max = count == 0 ? other.max : std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    if (!other.buckets.empty()) {
        if (buckets.empty()) {
            buckets = other.buckets;
        } else {
            for (std::size_t i = 0;
                 i < buckets.size() && i < other.buckets.size(); ++i) {
                buckets[i] += other.buckets[i];
            }
        }
    }
}

HistogramSnapshot WindowSnapshot::histogram() const {
    HistogramSnapshot h;
    h.count = count;
    h.sum = sum;
    h.min = min;
    h.max = max;
    h.buckets = buckets;
    return h;
}

RollingWindow::RollingWindow() : RollingWindow(nullptr, Options()) {}

RollingWindow::RollingWindow(const Clock* clock)
    : RollingWindow(clock, Options()) {}

RollingWindow::RollingWindow(const Clock* clock, Options opts)
    : clock_(clock ? clock : &steady_clock()),
      opts_([&] {
          Options o = opts;
          if (o.bucket_ns == 0) o.bucket_ns = 1;
          if (o.buckets == 0) o.buckets = 1;
          return o;
      }()),
      ring_(opts_.buckets) {}

RollingWindow::Bucket& RollingWindow::touch() {
    const std::uint64_t cur = clock_->now_ns() / opts_.bucket_ns;
    Bucket& b = ring_[cur % opts_.buckets];
    if (b.index != cur) {
        // The ring lapped this slot (or it was never used): recycle it.
        b.index = cur;
        b.count = 0;
        b.sum = 0;
        b.min = 0;
        b.max = 0;
        if (opts_.with_histogram) {
            b.hist.assign(histogram_detail::kBucketCount, 0);
        }
    }
    return b;
}

void RollingWindow::add(std::uint64_t n) {
    const std::lock_guard<std::mutex> lock(mu_);
    touch().count += n;
}

void RollingWindow::record(std::uint64_t value) {
    const std::lock_guard<std::mutex> lock(mu_);
    Bucket& b = touch();
    b.min = b.count == 0 ? value : std::min(b.min, value);
    b.max = b.count == 0 ? value : std::max(b.max, value);
    b.count += 1;
    b.sum += value;
    if (opts_.with_histogram) {
        b.hist[histogram_detail::bucket_index(value)] += 1;
    }
}

WindowSnapshot RollingWindow::over(std::uint64_t window_ns) const {
    const std::lock_guard<std::mutex> lock(mu_);
    WindowSnapshot out;
    std::uint64_t span = window_ns / opts_.bucket_ns;
    if (span == 0) span = 1;
    span = std::min<std::uint64_t>(span, opts_.buckets);
    out.window_ns = span * opts_.bucket_ns;
    const std::uint64_t cur = clock_->now_ns() / opts_.bucket_ns;
    for (const Bucket& b : ring_) {
        // In-window <=> index in (cur - span, cur]. Written addition-side
        // to dodge unsigned underflow near t=0; kEmpty never qualifies.
        if (b.index == kEmpty || b.index > cur || b.index + span <= cur) {
            continue;
        }
        if (b.count > 0) {
            out.min = out.count == 0 ? b.min : std::min(out.min, b.min);
            out.max = out.count == 0 ? b.max : std::max(out.max, b.max);
        }
        out.count += b.count;
        out.sum += b.sum;
        if (!b.hist.empty()) {
            if (out.buckets.empty()) {
                out.buckets.assign(histogram_detail::kBucketCount, 0);
            }
            for (std::size_t i = 0; i < b.hist.size(); ++i) {
                out.buckets[i] += b.hist[i];
            }
        }
    }
    return out;
}

}  // namespace efld::obs
