// Per-request lifecycle tracing.
//
// A TraceRecorder is a bounded ring of timestamped events shared by every
// shard of a cluster (ServeOptions::trace). Events follow a request through
// its whole life — submitted → admitted/deferred → prefill-done →
// first-token → failover-harvest/resubmit → retired — keyed by the request
// id that RequestHandle and failover resubmission already carry, so one
// request's story can be reconstructed even when it hops shards.
//
// The recorder is mutex-protected: events fire at control-plane rate (a few
// per request, not per token), so a lock beats the complexity of a lock-free
// ring. When full, the oldest events are overwritten and dropped() counts
// what was lost — tracing must never stall serving.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace efld::obs {

enum class TraceEvent : std::uint8_t {
    kSubmitted = 0,       // entered the queue (arg: prompt tokens)
    kAdmitted = 1,        // governor accepted; bound to a slot (arg: slot)
    kDeferred = 2,        // popped but re-queued for capacity (arg: deferral count)
    kPrefillDone = 3,     // last prompt token fed (arg: prompt tokens fed)
    kFirstToken = 4,      // first generated token surfaced (arg: token id)
    kFailoverHarvest = 5, // unfinished work harvested off a failed shard (arg: tokens done)
    kResubmitted = 6,     // resumed on a healthy shard (arg: failover count)
    kRetired = 7,         // finished (arg: FinishReason as integer)
    kPrefixHit = 8,       // adopted a shared prefix (arg: tokens covered)
    kCowCopy = 9,         // diverged into a shared page (arg: copies this step)
    // Alert-engine transitions: request_id carries the RULE index (alerts are
    // cluster-scoped, not per-request), arg the evaluated value ×1000.
    kAlertPending = 10,   // condition first observed true
    kAlertFiring = 11,    // condition held for the rule's `for` window
    kAlertResolved = 12,  // condition clear past the resolve hysteresis
    kShed = 13,           // overload governor shed a queued request (arg: ns left to deadline)
};

[[nodiscard]] const char* to_string(TraceEvent e) noexcept;

struct TraceRecord {
    std::uint64_t ts_ns = 0;
    std::uint64_t request_id = 0;
    std::uint32_t shard = 0;
    TraceEvent event = TraceEvent::kSubmitted;
    std::uint64_t arg = 0;  // event-specific, see TraceEvent comments
};

class TraceRecorder {
public:
    explicit TraceRecorder(std::size_t capacity = 4096,
                           const Clock* clock = nullptr)
        : capacity_(capacity == 0 ? 1 : capacity),
          clock_(clock ? clock : &steady_clock()) {
        ring_.reserve(capacity_);
    }

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    void record(std::uint64_t request_id, std::uint32_t shard, TraceEvent event,
                std::uint64_t arg = 0);

    // All retained events, oldest first.
    [[nodiscard]] std::vector<TraceRecord> snapshot() const;
    // Retained events for one request, oldest first.
    [[nodiscard]] std::vector<TraceRecord> for_request(std::uint64_t request_id) const;

    // Events overwritten because the ring was full.
    [[nodiscard]] std::uint64_t dropped() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    // One JSON object per line:
    // {"ts_ns":..., "request":..., "shard":..., "event":"...", "arg":...}
    void dump_jsonl(std::ostream& out) const;

    [[nodiscard]] const Clock& clock() const noexcept { return *clock_; }

private:
    const std::size_t capacity_;
    const Clock* clock_;
    mutable std::mutex mu_;
    std::vector<TraceRecord> ring_;  // grows to capacity_, then wraps
    std::size_t next_ = 0;           // overwrite cursor once full
    std::uint64_t dropped_ = 0;
};

}  // namespace efld::obs
