// Per-phase cost attribution for the serve hot path.
//
// A Profiler answers "where did the nanoseconds go" for one engine shard:
// every phase of a request's journey (queue pick, admission, prefix probe,
// prefill, decode_batch, attention, sampling, retire) accumulates wall
// nanoseconds, and the decode step additionally attributes the backend's
// StepCost — simulated ns and weight walks — split between the prefill and
// decode lanes that shared the step's weight walk. Totals are relaxed
// atomics (a handful of RMWs per span, cheap enough for per-token scopes);
// recent spans are kept in a bounded overwrite-oldest ring so the Perfetto
// exporter can draw a timeline of the last few thousand scopes without
// tracing ever stalling serving.
//
// Disabled is the default and costs one relaxed load per ScopedPhase.
// Defining EFLD_DISABLE_PROFILER compiles every scope to nothing for
// builds that must not carry even that load.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/clock.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics_registry.hpp"

namespace efld::obs {

// One slot per instrumented phase. Slugs (to_string) name the exported
// metric series: serve_phase_<slug>_wall_ns etc.
enum class Phase : std::uint8_t {
    kQueuePick = 0,    // scheduler pick + admission predicate over the queue
    kAdmission = 1,    // slot binding + session construction for one admit
    kPrefixProbe = 2,  // prefix-index probe inside the admission predicate
    kPrefixAdopt = 3,  // adopting a covered prefix chain into a fresh slot
    kPrefill = 4,      // prompt lanes' share of a decode step (attributed)
    kDecodeBatch = 5,  // decode lanes' share of a decode step (attributed)
    kAttention = 6,    // backend attention blocks (per layer, inside decode)
    kSampling = 7,     // logits -> token for one lane
    kRetire = 8,       // slot teardown + completion callbacks
    kCount = 9,
};

[[nodiscard]] const char* to_string(Phase p) noexcept;

// Accumulated cost of one phase since enable().
struct PhaseTotals {
    std::uint64_t count = 0;     // scopes (or attributed steps) recorded
    std::uint64_t wall_ns = 0;   // host wall time spent in the phase
    double sim_ns = 0.0;         // cycle-model simulated ns (accel backend)
    double weight_walks = 0.0;   // DDR weight-stream walks attributed
};

// One closed scope, for the timeline view.
struct SpanRecord {
    Phase phase = Phase::kQueuePick;
    std::uint32_t shard = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
};

class Profiler {
public:
    Profiler() = default;
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    // Turns profiling on for one shard. `span_capacity` bounds the span
    // ring (0 keeps totals but no timeline). Not thread-safe against
    // concurrent record calls — call before the driver starts.
    void enable(const Clock* clock, std::uint32_t shard_id,
                std::size_t span_capacity = 4096);

    // Resolves one serve_phase_<slug>_wall_ns histogram per phase in `reg`
    // so per-phase wall distributions ride the registry's snapshot. Without
    // a bound registry the series are never registered and stay absent
    // from scrapes — same discipline as the serve_prefix_* series.
    void bind_registry(MetricsRegistry& reg);

    [[nodiscard]] bool enabled() const noexcept {
#if defined(EFLD_DISABLE_PROFILER)
        return false;
#else
        return enabled_.load(std::memory_order_relaxed);
#endif
    }
    [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }
    [[nodiscard]] std::uint64_t now_ns() const noexcept {
        return clock_ ? clock_->now_ns() : 0;
    }

    // Closes a scope: totals, histogram, and (if capacity allows) the span
    // ring. Any thread.
    void record_span(Phase p, std::uint64_t begin_ns, std::uint64_t end_ns);

    // Totals-only accumulation (no timeline entry).
    void add_wall(Phase p, std::uint64_t wall_ns) noexcept;

    // Attributes one decode step's StepCost between kPrefill and
    // kDecodeBatch by lane share. The split is by subtraction so the two
    // phases' sim_ns sum EXACTLY to the step's simulated_ns (the bench gate
    // depends on it).
    void attribute_step(std::uint64_t wall_ns, double sim_ns,
                        double weight_walks, std::size_t prefill_lanes,
                        std::size_t lanes) noexcept;

    [[nodiscard]] PhaseTotals totals(Phase p) const noexcept;
    // Retained spans, oldest first.
    [[nodiscard]] std::vector<SpanRecord> spans() const;
    // Spans overwritten because the ring was full.
    [[nodiscard]] std::uint64_t spans_dropped() const;

    // Writes serve_phase_<slug>_{count,wall_ns,sim_ns}_total counters and
    // serve_phase_<slug>_weight_walks gauges for every phase with activity.
    void export_into(MetricsSnapshot& snap) const;

private:
    struct Slot {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> wall_ns{0};
        std::atomic<double> sim_ns{0.0};
        std::atomic<double> weight_walks{0.0};
    };

    void bump(Phase p, std::uint64_t wall_ns, double sim_ns,
              double weight_walks, std::uint64_t count_delta) noexcept;

    std::atomic<bool> enabled_{false};
    const Clock* clock_ = nullptr;
    std::uint32_t shard_ = 0;
    Slot slots_[static_cast<std::size_t>(Phase::kCount)];
    LatencyHistogram* hists_[static_cast<std::size_t>(Phase::kCount)] = {};

    std::size_t span_capacity_ = 0;
    mutable std::mutex span_mu_;
    std::vector<SpanRecord> span_ring_;  // grows to capacity, then wraps
    std::size_t span_next_ = 0;
    std::uint64_t span_dropped_ = 0;
};

// RAII phase scope. A null or disabled profiler costs one branch; defining
// EFLD_DISABLE_PROFILER compiles the whole object away.
class ScopedPhase {
public:
#if defined(EFLD_DISABLE_PROFILER)
    ScopedPhase(Profiler*, Phase) noexcept {}
#else
    ScopedPhase(Profiler* prof, Phase phase) noexcept
        : prof_(prof && prof->enabled() ? prof : nullptr),
          phase_(phase),
          begin_ns_(prof_ ? prof_->now_ns() : 0) {}
    ~ScopedPhase() {
        if (prof_) prof_->record_span(phase_, begin_ns_, prof_->now_ns());
    }
#endif
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

private:
#if !defined(EFLD_DISABLE_PROFILER)
    Profiler* prof_ = nullptr;
    Phase phase_ = Phase::kQueuePick;
    std::uint64_t begin_ns_ = 0;
#endif
};

}  // namespace efld::obs
