#include "obs/exposition.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "obs/latency_histogram.hpp"

namespace efld::obs {

namespace {

void append_format(std::string& out, const char* fmt, ...) {
    char buf[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// %g keeps integers clean ("3" not "3.000000") and floats compact.
void append_double(std::string& out, double v) { append_format(out, "%g", v); }

// HELP text for the well-known series; everything else gets a generic line
// (scrapers only require that HELP precede the samples, not that it be
// poetry). Kept to the stable top-level series — per-rule alert gauges and
// per-phase profiler series are named after their subject and self-describe.
const char* help_for(const std::string& name) {
    struct Entry {
        const char* name;
        const char* help;
    };
    static constexpr Entry kTable[] = {
        {"serve_requests_completed", "Requests retired, any finish reason."},
        {"serve_requests_shed", "Queued requests shed by overload protection."},
        {"serve_requests_expired", "Requests retired past their deadline."},
        {"serve_generated_tokens", "Tokens generated across all requests."},
        {"serve_queued", "Requests waiting in the admission queue."},
        {"serve_active_sessions", "Requests currently decoding."},
        {"serve_queue_wait_ns", "Queue wait per request."},
        {"serve_ttft_ns", "Time to first token per request."},
        {"serve_e2e_ns", "End-to-end latency per request."},
        {"serve_alerts_firing", "Alert rules currently firing."},
        {"serve_alerts_pending", "Alert rules currently pending."},
        {"serve_alerts_fired_total", "Alert firing transitions."},
        {"serve_alerts_resolved_total", "Alert resolve transitions."},
        {"cluster_shards", "Configured shard count."},
        {"cluster_healthy_shards", "Shards currently serving."},
        {"cluster_shard_failures", "Shard failures observed."},
        {"cluster_requests_failed_over", "Requests re-placed after a shard failure."},
        {"cluster_overload_engaged", "1 while the overload governor is engaged."},
        {"cluster_overload_shed_total", "Requests shed while engaged."},
        {"process_uptime_seconds", "Seconds since process start."},
        {"process_rss_bytes", "Resident set size."},
        {"process_threads", "OS threads in the process."},
        {"process_build_info", "Always 1; build metadata."},
        {"slo_tsdb_ingests_total", "Snapshots ingested into the time-series store."},
        {"slo_tsdb_dropped_ingests_total", "Ingests dropped for non-monotonic time."},
        {"slo_flight_captures_total", "Flight-recorder bundles written."},
    };
    for (const Entry& e : kTable) {
        if (name == e.name) return e.help;
    }
    return nullptr;
}

void append_help_type(std::string& out, const std::string& name,
                      const char* type) {
    const char* help = help_for(name);
    if (help != nullptr) {
        append_format(out, "# HELP %s %s\n", name.c_str(), help);
    } else {
        // Generic but present: Prometheus tooling treats a missing HELP as a
        // lint warning, and the smoke script's validator requires the pair.
        append_format(out, "# HELP %s %s %s.\n", name.c_str(), type,
                      name.c_str());
    }
    append_format(out, "# TYPE %s %s\n", name.c_str(), type);
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
    std::string out;
    out.reserve(4096);
    for (const auto& [name, v] : snapshot.counters) {
        append_help_type(out, name, "counter");
        append_format(out, "%s %" PRIu64 "\n", name.c_str(), v);
    }
    for (const auto& [name, v] : snapshot.gauges) {
        append_help_type(out, name, "gauge");
        append_format(out, "%s ", name.c_str());
        append_double(out, v);
        out.push_back('\n');
    }
    for (const auto& [name, h] : snapshot.histograms) {
        append_help_type(out, name, "histogram");
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (h.buckets[i] == 0) continue;
            cumulative += h.buckets[i];
            append_format(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                          name.c_str(), histogram_detail::bucket_upper(i), cumulative);
        }
        append_format(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(), h.count);
        append_format(out, "%s_sum %" PRIu64 "\n", name.c_str(), h.sum);
        append_format(out, "%s_count %" PRIu64 "\n", name.c_str(), h.count);
    }
    return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
    std::string out = "{";
    out += "\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : snapshot.counters) {
        if (!first) out.push_back(',');
        first = false;
        append_format(out, "\"%s\":%" PRIu64, name.c_str(), v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snapshot.gauges) {
        if (!first) out.push_back(',');
        first = false;
        append_format(out, "\"%s\":", name.c_str());
        append_double(out, v);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snapshot.histograms) {
        if (!first) out.push_back(',');
        first = false;
        const LatencySummary s = LatencySummary::from(h);
        append_format(out,
                      "\"%s\":{\"count\":%" PRIu64 ",\"sum_ns\":%" PRIu64
                      ",\"min_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64
                      ",\"mean_ns\":%" PRIu64 ",\"p50_ns\":%" PRIu64
                      ",\"p95_ns\":%" PRIu64 ",\"p99_ns\":%" PRIu64 "}",
                      name.c_str(), h.count, h.sum, h.min, h.max, s.mean_ns,
                      s.p50_ns, s.p95_ns, s.p99_ns);
    }
    out += "}}";
    return out;
}

std::map<std::string, double> parse_prometheus(const std::string& text) {
    std::map<std::string, double> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        // Split on the LAST space: label values may not contain spaces in
        // our output, but this keeps the rule simple and robust.
        const std::size_t sep = line.rfind(' ');
        check(sep != std::string::npos && sep > 0 && sep + 1 < line.size(),
              "parse_prometheus: malformed sample line: " + line);
        const std::string name = line.substr(0, sep);
        const std::string value = line.substr(sep + 1);
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        check(end != nullptr && *end == '\0',
              "parse_prometheus: bad sample value: " + line);
        out[name] = v;
    }
    return out;
}

}  // namespace efld::obs
