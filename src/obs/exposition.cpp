#include "obs/exposition.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "obs/latency_histogram.hpp"

namespace efld::obs {

namespace {

void append_format(std::string& out, const char* fmt, ...) {
    char buf[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// %g keeps integers clean ("3" not "3.000000") and floats compact.
void append_double(std::string& out, double v) { append_format(out, "%g", v); }

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
    std::string out;
    out.reserve(4096);
    for (const auto& [name, v] : snapshot.counters) {
        append_format(out, "# TYPE %s counter\n", name.c_str());
        append_format(out, "%s %" PRIu64 "\n", name.c_str(), v);
    }
    for (const auto& [name, v] : snapshot.gauges) {
        append_format(out, "# TYPE %s gauge\n", name.c_str());
        append_format(out, "%s ", name.c_str());
        append_double(out, v);
        out.push_back('\n');
    }
    for (const auto& [name, h] : snapshot.histograms) {
        append_format(out, "# TYPE %s histogram\n", name.c_str());
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            if (h.buckets[i] == 0) continue;
            cumulative += h.buckets[i];
            append_format(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                          name.c_str(), histogram_detail::bucket_upper(i), cumulative);
        }
        append_format(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(), h.count);
        append_format(out, "%s_sum %" PRIu64 "\n", name.c_str(), h.sum);
        append_format(out, "%s_count %" PRIu64 "\n", name.c_str(), h.count);
    }
    return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
    std::string out = "{";
    out += "\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : snapshot.counters) {
        if (!first) out.push_back(',');
        first = false;
        append_format(out, "\"%s\":%" PRIu64, name.c_str(), v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snapshot.gauges) {
        if (!first) out.push_back(',');
        first = false;
        append_format(out, "\"%s\":", name.c_str());
        append_double(out, v);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snapshot.histograms) {
        if (!first) out.push_back(',');
        first = false;
        const LatencySummary s = LatencySummary::from(h);
        append_format(out,
                      "\"%s\":{\"count\":%" PRIu64 ",\"sum_ns\":%" PRIu64
                      ",\"min_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64
                      ",\"mean_ns\":%" PRIu64 ",\"p50_ns\":%" PRIu64
                      ",\"p95_ns\":%" PRIu64 ",\"p99_ns\":%" PRIu64 "}",
                      name.c_str(), h.count, h.sum, h.min, h.max, s.mean_ns,
                      s.p50_ns, s.p95_ns, s.p99_ns);
    }
    out += "}}";
    return out;
}

std::map<std::string, double> parse_prometheus(const std::string& text) {
    std::map<std::string, double> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        // Split on the LAST space: label values may not contain spaces in
        // our output, but this keeps the rule simple and robust.
        const std::size_t sep = line.rfind(' ');
        check(sep != std::string::npos && sep > 0 && sep + 1 < line.size(),
              "parse_prometheus: malformed sample line: " + line);
        const std::string name = line.substr(0, sep);
        const std::string value = line.substr(sep + 1);
        char* end = nullptr;
        const double v = std::strtod(value.c_str(), &end);
        check(end != nullptr && *end == '\0',
              "parse_prometheus: bad sample value: " + line);
        out[name] = v;
    }
    return out;
}

}  // namespace efld::obs
