#include "obs/metrics_registry.hpp"

namespace efld::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot s;
    for (const auto& [name, c] : counters_) s.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
    return s;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    for (const auto& [name, v] : other.counters) counters[name] += v;
    for (const auto& [name, v] : other.gauges) gauges[name] += v;
    for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

}  // namespace efld::obs
