#include "obs/alert_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/check.hpp"

namespace efld::obs {

namespace {

void append_num(std::string& out, double v) {
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "%g", v);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
    throw std::invalid_argument("alert rule \"" + std::string(spec) +
                                "\": " + why);
}

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t end = s.find(sep, start);
        if (end == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

double parse_number(std::string_view spec, const std::string& field) {
    char* end = nullptr;
    const double v = std::strtod(field.c_str(), &end);
    if (end == nullptr || *end != '\0' || field.empty()) {
        bad_spec(spec, "bad number \"" + field + "\"");
    }
    return v;
}

// "2s" / "500ms" / "1500" (bare = milliseconds, the wire flag convention).
std::uint64_t parse_duration_ns(std::string_view spec, const std::string& field) {
    if (field.empty()) bad_spec(spec, "empty duration");
    std::uint64_t scale = 1'000'000;  // ms
    std::string digits = field;
    if (field.size() > 2 && field.compare(field.size() - 2, 2, "ms") == 0) {
        digits = field.substr(0, field.size() - 2);
    } else if (field.back() == 's') {
        scale = 1'000'000'000;
        digits = field.substr(0, field.size() - 1);
    }
    char* end = nullptr;
    const double v = std::strtod(digits.c_str(), &end);
    if (end == nullptr || *end != '\0' || digits.empty() || v < 0) {
        bad_spec(spec, "bad duration \"" + field + "\"");
    }
    return static_cast<std::uint64_t>(v * static_cast<double>(scale));
}

AlertOp parse_op(std::string_view spec, const std::string& field) {
    if (field == "gt") return AlertOp::kGt;
    if (field == "ge") return AlertOp::kGe;
    if (field == "lt") return AlertOp::kLt;
    if (field == "le") return AlertOp::kLe;
    bad_spec(spec, "bad op \"" + field + "\" (gt|ge|lt|le)");
}

bool compare(AlertOp op, double lhs, double rhs) noexcept {
    switch (op) {
        case AlertOp::kGt: return lhs > rhs;
        case AlertOp::kGe: return lhs >= rhs;
        case AlertOp::kLt: return lhs < rhs;
        case AlertOp::kLe: return lhs <= rhs;
    }
    return false;
}

}  // namespace

AlertRule parse_alert_rule(std::string_view spec) {
    AlertRule rule;
    std::string_view body = spec;
    // Optional `name=` prefix; the body's fields use ':' so '=' is
    // unambiguous.
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos && body.find(':') > eq) {
        rule.name = std::string(body.substr(0, eq));
        body = body.substr(eq + 1);
    }
    const std::vector<std::string> f = split(body, ':');
    if (f.empty()) bad_spec(spec, "empty rule");
    if (f[0] == "threshold") {
        if (f.size() != 5) {
            bad_spec(spec, "want threshold:<metric>:<op>:<value>:<for>");
        }
        rule.kind = AlertRule::Kind::kThreshold;
        rule.metric = f[1];
        rule.op = parse_op(spec, f[2]);
        rule.value = parse_number(spec, f[3]);
        rule.for_ns = parse_duration_ns(spec, f[4]);
        rule.resolve_ns = rule.for_ns;
    } else if (f[0] == "burnrate") {
        if (f.size() != 7) {
            bad_spec(spec,
                     "want burnrate:<hist>:<slo_ms>:<objective>:<factor>:"
                     "<long>:<short>");
        }
        rule.kind = AlertRule::Kind::kBurnRate;
        rule.metric = f[1];
        rule.slo_threshold_ns = parse_duration_ns(spec, f[2]);
        rule.objective = parse_number(spec, f[3]);
        if (rule.objective > 1.0) rule.objective /= 100.0;  // "99" == 0.99
        if (rule.objective <= 0.0 || rule.objective >= 1.0) {
            bad_spec(spec, "objective must be in (0, 1) or (0, 100)");
        }
        rule.factor = parse_number(spec, f[4]);
        if (rule.factor <= 0.0) bad_spec(spec, "factor must be > 0");
        rule.long_window_ns = parse_duration_ns(spec, f[5]);
        rule.short_window_ns = parse_duration_ns(spec, f[6]);
        if (rule.short_window_ns == 0 ||
            rule.short_window_ns > rule.long_window_ns) {
            bad_spec(spec, "want 0 < short <= long window");
        }
        rule.resolve_ns = rule.short_window_ns;
    } else {
        bad_spec(spec, "unknown kind \"" + f[0] + "\" (threshold|burnrate)");
    }
    if (rule.metric.empty()) bad_spec(spec, "empty metric");
    return rule;
}

std::vector<AlertRule> parse_alert_rules(std::string_view specs) {
    std::vector<AlertRule> out;
    for (const std::string& one : split(specs, ',')) {
        if (one.empty()) continue;
        out.push_back(parse_alert_rule(one));
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].name.empty()) out[i].name = "rule" + std::to_string(i);
    }
    return out;
}

AlertEngine::AlertEngine(const TimeSeriesStore* store) : store_(store) {
    check(store_ != nullptr, "AlertEngine: null store");
}

std::size_t AlertEngine::add_rule(AlertRule rule) {
    std::lock_guard<std::mutex> lock(mu_);
    if (rule.name.empty()) rule.name = "rule" + std::to_string(rules_.size());
    rules_.push_back(std::move(rule));
    states_.emplace_back();
    return rules_.size() - 1;
}

void AlertEngine::subscribe(Subscriber cb) {
    std::lock_guard<std::mutex> lock(mu_);
    subscribers_.push_back(std::move(cb));
}

bool AlertEngine::condition(const AlertRule& rule, std::uint64_t now_ns,
                            double& value) const {
    if (rule.kind == AlertRule::Kind::kThreshold) {
        const std::optional<SeriesPoint> p = store_->latest(rule.metric);
        if (!p.has_value()) {
            value = 0.0;
            return false;  // no data is never a violation
        }
        value = p->value;
        return compare(rule.op, value, rule.value);
    }
    const double budget = 1.0 - rule.objective;
    const double long_burn =
        store_->bad_fraction(rule.metric, rule.slo_threshold_ns,
                             rule.long_window_ns, now_ns) /
        budget;
    const double short_burn =
        store_->bad_fraction(rule.metric, rule.slo_threshold_ns,
                             rule.short_window_ns, now_ns) /
        budget;
    value = long_burn;
    return long_burn > rule.factor && short_burn > rule.factor;
}

void AlertEngine::set_state(std::size_t i, AlertState to, std::uint64_t now_ns,
                            double value, std::vector<Transition>& fired) {
    RuleState& rs = states_[i];
    if (rs.state == to) return;
    Transition t;
    t.ts_ns = now_ns;
    t.rule = static_cast<std::uint32_t>(i);
    t.from = rs.state;
    t.to = to;
    t.value = value;
    rs.state = to;
    if (to == AlertState::kFiring) ++rs.fired_total;
    if (t.from == AlertState::kFiring && to == AlertState::kInactive) {
        ++rs.resolved_total;
    }
    if (timeline_.size() >= timeline_cap_) {
        timeline_.erase(timeline_.begin());
    }
    timeline_.push_back(t);
    fired.push_back(t);
}

void AlertEngine::evaluate(std::uint64_t now_ns) {
    std::vector<Transition> fired;
    std::vector<Subscriber> subs;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < rules_.size(); ++i) {
            const AlertRule& rule = rules_[i];
            RuleState& rs = states_[i];
            double value = 0.0;
            const bool cond = condition(rule, now_ns, value);
            rs.last_value = value;
            if (cond) {
                rs.clear_since = kNever;
                if (rs.cond_since == kNever) rs.cond_since = now_ns;
                if (rs.state == AlertState::kInactive) {
                    set_state(i, AlertState::kPending, now_ns, value, fired);
                }
                if (rs.state == AlertState::kPending &&
                    now_ns - rs.cond_since >= rule.for_ns) {
                    set_state(i, AlertState::kFiring, now_ns, value, fired);
                }
            } else {
                rs.cond_since = kNever;
                if (rs.state == AlertState::kPending) {
                    // A pending alert never fired; cancelling it needs no
                    // hysteresis.
                    set_state(i, AlertState::kInactive, now_ns, value, fired);
                } else if (rs.state == AlertState::kFiring) {
                    if (rs.clear_since == kNever) rs.clear_since = now_ns;
                    if (now_ns - rs.clear_since >= rule.resolve_ns) {
                        set_state(i, AlertState::kInactive, now_ns, value, fired);
                        rs.clear_since = kNever;
                    }
                }
            }
        }
        subs = subscribers_;
    }
    // Subscribers run outside the lock: they call back into router/recorder
    // code that may itself snapshot metrics (which reads this engine).
    for (const Transition& t : fired) {
        for (const Subscriber& cb : subs) cb(rules_[t.rule], t);
    }
}

AlertState AlertEngine::state(std::size_t rule) const {
    std::lock_guard<std::mutex> lock(mu_);
    return states_.at(rule).state;
}

std::size_t AlertEngine::firing_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const RuleState& rs : states_) {
        n += rs.state == AlertState::kFiring ? 1 : 0;
    }
    return n;
}

std::vector<AlertEngine::Transition> AlertEngine::timeline() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timeline_;
}

void AlertEngine::export_into(MetricsSnapshot& snapshot) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t firing = 0;
    std::size_t pending = 0;
    std::uint64_t fired_total = 0;
    std::uint64_t resolved_total = 0;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const RuleState& rs = states_[i];
        firing += rs.state == AlertState::kFiring ? 1 : 0;
        pending += rs.state == AlertState::kPending ? 1 : 0;
        fired_total += rs.fired_total;
        resolved_total += rs.resolved_total;
        snapshot.set_gauge("serve_alert_state_" + rules_[i].name,
                           static_cast<double>(static_cast<int>(rs.state)));
        snapshot.set_gauge("serve_alert_value_" + rules_[i].name, rs.last_value);
    }
    snapshot.set_gauge("serve_alerts_firing", static_cast<double>(firing));
    snapshot.set_gauge("serve_alerts_pending", static_cast<double>(pending));
    snapshot.set_counter("serve_alerts_fired_total", fired_total);
    snapshot.set_counter("serve_alerts_resolved_total", resolved_total);
}

std::string AlertEngine::to_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"rules\":[";
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (i > 0) out.push_back(',');
        const AlertRule& r = rules_[i];
        const RuleState& rs = states_[i];
        out += "{\"name\":\"" + r.name + "\",\"kind\":\"";
        out += r.kind == AlertRule::Kind::kThreshold ? "threshold" : "burnrate";
        out += "\",\"metric\":\"" + r.metric + "\",\"state\":\"";
        out += to_string(rs.state);
        out += "\",\"value\":";
        append_num(out, rs.last_value);
        out += ",\"fired_total\":" + std::to_string(rs.fired_total);
        out += ",\"resolved_total\":" + std::to_string(rs.resolved_total) + "}";
    }
    out += "],\"timeline\":[";
    for (std::size_t i = 0; i < timeline_.size(); ++i) {
        if (i > 0) out.push_back(',');
        const Transition& t = timeline_[i];
        out += "{\"ts_ns\":" + std::to_string(t.ts_ns);
        out += ",\"rule\":\"" + rules_[t.rule].name + "\"";
        out += ",\"from\":\"" + std::string(to_string(t.from)) + "\"";
        out += ",\"to\":\"" + std::string(to_string(t.to)) + "\"";
        out += ",\"value\":";
        append_num(out, t.value);
        out += "}";
    }
    out += "]}";
    return out;
}

}  // namespace efld::obs
