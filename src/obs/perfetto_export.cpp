#include "obs/perfetto_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

namespace efld::obs {

namespace {

void append_format(std::string& out, const char* fmt, ...) {
    char buf[512];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// Trace-event timestamps are microseconds; keep sub-µs precision.
double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void append_event(std::string& out, bool& first, const std::string& body) {
    if (!first) out.push_back(',');
    first = false;
    out += body;
}

constexpr std::uint32_t kDriverTid = 1;
constexpr std::uint32_t kLifecycleTid = 2;
constexpr std::uint32_t kRequestTid = 3;

}  // namespace

std::string to_perfetto_json(const std::vector<TraceRecord>& lifecycle,
                             const std::vector<ShardSpans>& profiler_spans) {
    std::string out = "{\"traceEvents\":[";
    bool first = true;

    // Track metadata: every shard seen in either stream gets a process name
    // and named threads, so the UI reads "shard 0 / driver" not "pid 0".
    std::set<std::uint32_t> shards;
    for (const TraceRecord& r : lifecycle) shards.insert(r.shard);
    for (const ShardSpans& s : profiler_spans) shards.insert(s.shard);
    for (const std::uint32_t shard : shards) {
        std::string body;
        append_format(body,
                      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%u,"
                      "\"tid\":0,\"args\":{\"name\":\"shard %u\"}}",
                      shard, shard);
        append_event(out, first, body);
        static const struct {
            std::uint32_t tid;
            const char* name;
        } kThreads[] = {{kDriverTid, "driver"},
                        {kLifecycleTid, "lifecycle"},
                        {kRequestTid, "requests"}};
        for (const auto& t : kThreads) {
            body.clear();
            append_format(body,
                          "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%u,"
                          "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                          shard, t.tid, t.name);
            append_event(out, first, body);
        }
    }

    // Profiler phases: duration slices on the shard's driver track.
    for (const ShardSpans& s : profiler_spans) {
        for (const SpanRecord& span : s.spans) {
            const std::uint64_t dur =
                span.end_ns > span.begin_ns ? span.end_ns - span.begin_ns : 0;
            std::string body;
            append_format(body,
                          "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"phase\","
                          "\"pid\":%u,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                          to_string(span.phase), s.shard, kDriverTid,
                          to_us(span.begin_ns), to_us(dur));
            append_event(out, first, body);
        }
    }

    // Lifecycle instants, plus residence bounds per (request, shard).
    struct Residence {
        std::uint64_t first_ns = 0;
        std::uint64_t last_ns = 0;
    };
    std::map<std::pair<std::uint64_t, std::uint32_t>, Residence> residence;
    for (const TraceRecord& r : lifecycle) {
        std::string body;
        append_format(body,
                      "{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"lifecycle\","
                      "\"pid\":%u,\"tid\":%u,\"ts\":%.3f,\"s\":\"t\","
                      "\"args\":{\"request\":%" PRIu64 ",\"arg\":%" PRIu64
                      "}}",
                      to_string(r.event), r.shard, kLifecycleTid,
                      to_us(r.ts_ns), r.request_id, r.arg);
        append_event(out, first, body);
        auto [it, inserted] =
            residence.try_emplace({r.request_id, r.shard},
                                  Residence{r.ts_ns, r.ts_ns});
        if (!inserted) {
            it->second.first_ns = std::min(it->second.first_ns, r.ts_ns);
            it->second.last_ns = std::max(it->second.last_ns, r.ts_ns);
        }
    }
    for (const auto& [key, res] : residence) {
        // Give zero-width residences 1 µs so the slice renders and flow
        // arrows have something to bind to.
        const std::uint64_t dur_ns =
            std::max<std::uint64_t>(res.last_ns - res.first_ns, 1000);
        std::string body;
        append_format(body,
                      "{\"ph\":\"X\",\"name\":\"request %" PRIu64
                      "\",\"cat\":\"request\",\"pid\":%u,\"tid\":%u,"
                      "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"request\":%" PRIu64
                      "}}",
                      key.first, key.second, kRequestTid, to_us(res.first_ns),
                      to_us(dur_ns), key.first);
        append_event(out, first, body);
    }

    // Failover flow: an arrow from the harvest on the dying shard to the
    // resubmit on the survivor, keyed by the request id both sides carry.
    for (const TraceRecord& r : lifecycle) {
        const bool start = r.event == TraceEvent::kFailoverHarvest;
        const bool finish = r.event == TraceEvent::kResubmitted;
        if (!start && !finish) continue;
        std::string body;
        append_format(body,
                      "{\"ph\":\"%s\",\"name\":\"failover\",\"cat\":"
                      "\"failover\",\"id\":%" PRIu64
                      ",\"pid\":%u,\"tid\":%u,\"ts\":%.3f%s}",
                      start ? "s" : "f", r.request_id, r.shard, kRequestTid,
                      to_us(r.ts_ns), start ? "" : ",\"bp\":\"e\"");
        append_event(out, first, body);
    }

    out += "]}";
    return out;
}

}  // namespace efld::obs
