#include "obs/time_series.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/check.hpp"

namespace efld::obs {

namespace {

void append_num(std::string& out, double v) {
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "%g", v);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

// Sparse (bucket, count) view of a delta between two cumulative histogram
// snapshots. A counter reset (count went backwards) restarts from the
// current snapshot, mirroring the scalar counter rule.
std::vector<std::pair<std::uint32_t, std::uint64_t>> sparse_delta(
    const HistogramSnapshot& prev, const HistogramSnapshot& cur) {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
    const bool reset = cur.count < prev.count;
    const std::size_t n = cur.buckets.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t c = cur.buckets[i];
        const std::uint64_t p =
            (reset || i >= prev.buckets.size()) ? 0 : prev.buckets[i];
        if (c > p) out.emplace_back(static_cast<std::uint32_t>(i), c - p);
    }
    return out;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore() : TimeSeriesStore(Options{}) {}

TimeSeriesStore::TimeSeriesStore(Options opts) : opts_(std::move(opts)) {
    check(!opts_.levels.empty(), "TimeSeriesStore: at least one level");
    for (const Level& l : opts_.levels) {
        check(l.step_ns > 0 && l.slots > 0, "TimeSeriesStore: zero level");
    }
}

TimeSeriesStore::ScalarSeries& TimeSeriesStore::scalar_series(
    const std::string& name) {
    ScalarSeries& s = scalars_[name];
    if (s.rings.empty()) {
        s.rings.resize(opts_.levels.size());
        for (std::size_t i = 0; i < opts_.levels.size(); ++i) {
            s.rings[i].resize(opts_.levels[i].slots);
        }
    }
    return s;
}

TimeSeriesStore::HistSeries& TimeSeriesStore::hist_series(const std::string& name) {
    HistSeries& s = hists_[name];
    if (s.rings.empty()) {
        s.rings.resize(opts_.levels.size());
        for (std::size_t i = 0; i < opts_.levels.size(); ++i) {
            s.rings[i].resize(opts_.levels[i].slots);
        }
    }
    return s;
}

void TimeSeriesStore::push_scalar(ScalarSeries& s, std::uint64_t now_ns,
                                  double value) {
    for (std::size_t lvl = 0; lvl < opts_.levels.size(); ++lvl) {
        const Level& level = opts_.levels[lvl];
        const std::uint64_t idx = now_ns / level.step_ns;
        ScalarBucket& b = s.rings[lvl][idx % level.slots];
        if (b.index != idx) b = ScalarBucket{idx, 0.0, 0};
        b.sum += value;
        b.count += 1;
    }
}

bool TimeSeriesStore::ingest(const MetricsSnapshot& snapshot, std::uint64_t now_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_ingested_ && now_ns <= last_ingest_ns_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const bool first = !has_ingested_;
    const std::uint64_t dt_ns = first ? 0 : now_ns - last_ingest_ns_;

    for (const auto& [name, v] : snapshot.gauges) {
        push_scalar(scalar_series(name), now_ns, v);
    }
    for (const auto& [name, v] : snapshot.counters) {
        auto it = counter_prev_.find(name);
        if (it == counter_prev_.end()) {
            // First sight baselines the counter; the next ingest has a delta.
            counter_prev_[name] = v;
            continue;
        }
        const std::uint64_t prev = it->second;
        it->second = v;
        if (dt_ns == 0) continue;
        const std::uint64_t delta = v >= prev ? v - prev : v;  // reset-safe
        const double rate =
            static_cast<double>(delta) * 1e9 / static_cast<double>(dt_ns);
        push_scalar(scalar_series(name), now_ns, rate);
    }
    for (const auto& [name, h] : snapshot.histograms) {
        HistSeries& s = hist_series(name);
        if (s.has_prev && dt_ns > 0) {
            auto sparse = sparse_delta(s.prev, h);
            if (!sparse.empty()) {
                const bool reset = h.count < s.prev.count;
                const std::uint64_t dcount =
                    reset ? h.count : h.count - s.prev.count;
                const std::uint64_t dsum = reset || h.sum < s.prev.sum
                                               ? h.sum
                                               : h.sum - s.prev.sum;
                for (std::size_t lvl = 0; lvl < opts_.levels.size(); ++lvl) {
                    const Level& level = opts_.levels[lvl];
                    const std::uint64_t idx = now_ns / level.step_ns;
                    HistBucket& b = s.rings[lvl][idx % level.slots];
                    if (b.index != idx) {
                        b = HistBucket{};
                        b.index = idx;
                    }
                    b.count += dcount;
                    b.sum += dsum;
                    for (const auto& [bi, n] : sparse) {
                        auto pos = std::find_if(
                            b.sparse.begin(), b.sparse.end(),
                            [bi = bi](const auto& p) { return p.first == bi; });
                        if (pos == b.sparse.end()) {
                            b.sparse.emplace_back(bi, n);
                        } else {
                            pos->second += n;
                        }
                    }
                }
            }
        }
        s.prev = h;
        s.has_prev = true;
    }

    last_ingest_ns_ = now_ns;
    has_ingested_ = true;
    ingests_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::size_t TimeSeriesStore::level_for(std::uint64_t from_ns,
                                       std::uint64_t now_ns) const {
    for (std::size_t lvl = 0; lvl < opts_.levels.size(); ++lvl) {
        const Level& level = opts_.levels[lvl];
        const std::uint64_t retention = level.step_ns * (level.slots - 1);
        const std::uint64_t oldest = now_ns > retention ? now_ns - retention : 0;
        if (from_ns >= oldest) return lvl;
    }
    return opts_.levels.size() - 1;
}

std::vector<SeriesPoint> TimeSeriesStore::collect(const ScalarSeries& s,
                                                  std::uint64_t from_ns,
                                                  std::uint64_t to_ns) const {
    const std::size_t lvl = level_for(from_ns, last_ingest_ns_);
    const Level& level = opts_.levels[lvl];
    // Clamp to the level's retention: after a pause longer than a ring's
    // span, slots no new ingest has landed on still physically hold their
    // pre-pause data — logically expired, never served.
    const std::uint64_t retention = level.step_ns * level.slots;
    const std::uint64_t oldest =
        last_ingest_ns_ > retention ? last_ingest_ns_ - retention : 0;
    const std::uint64_t from = std::max(from_ns, oldest);
    std::vector<SeriesPoint> out;
    for (const ScalarBucket& b : s.rings[lvl]) {
        if (b.index == kEmpty || b.count == 0) continue;
        const std::uint64_t t = b.index * level.step_ns;
        if (t + level.step_ns <= from || t > to_ns) continue;
        out.push_back({t, b.sum / static_cast<double>(b.count)});
    }
    std::sort(out.begin(), out.end(),
              [](const SeriesPoint& a, const SeriesPoint& b) {
                  return a.t_ns < b.t_ns;
              });
    return out;
}

std::vector<SeriesPoint> TimeSeriesStore::query(const std::string& name,
                                                std::uint64_t from_ns,
                                                std::uint64_t to_ns) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = scalars_.find(name);
    if (it == scalars_.end()) return {};
    return collect(it->second, from_ns, to_ns);
}

std::optional<SeriesPoint> TimeSeriesStore::latest(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = scalars_.find(name);
    if (it == scalars_.end()) return std::nullopt;
    const Level& level = opts_.levels[0];
    const ScalarBucket* best = nullptr;
    for (const ScalarBucket& b : it->second.rings[0]) {
        if (b.index == kEmpty || b.count == 0) continue;
        if (best == nullptr || b.index > best->index) best = &b;
    }
    if (best == nullptr) return std::nullopt;
    return SeriesPoint{best->index * level.step_ns,
                       best->sum / static_cast<double>(best->count)};
}

HistogramSnapshot TimeSeriesStore::histogram_over(const std::string& name,
                                                  std::uint64_t window_ns,
                                                  std::uint64_t now_ns) const {
    std::lock_guard<std::mutex> lock(mu_);
    HistogramSnapshot out;
    auto it = hists_.find(name);
    if (it == hists_.end()) return out;
    std::uint64_t from = now_ns > window_ns ? now_ns - window_ns : 0;
    const std::size_t lvl = level_for(from, now_ns);
    const Level& level = opts_.levels[lvl];
    // Same stale-slot clamp as collect(): a pause past the ring's span must
    // not resurrect pre-pause buckets into the window.
    const std::uint64_t retention = level.step_ns * level.slots;
    if (now_ns > retention) from = std::max(from, now_ns - retention);
    out.buckets.assign(histogram_detail::kBucketCount, 0);
    std::size_t lo = histogram_detail::kBucketCount;
    std::size_t hi = 0;
    for (const HistBucket& b : it->second.rings[lvl]) {
        if (b.index == kEmpty || b.count == 0) continue;
        const std::uint64_t t = b.index * level.step_ns;
        if (t + level.step_ns <= from || t > now_ns) continue;
        out.count += b.count;
        out.sum += b.sum;
        for (const auto& [bi, n] : b.sparse) {
            out.buckets[bi] += n;
            lo = std::min<std::size_t>(lo, bi);
            hi = std::max<std::size_t>(hi, bi);
        }
    }
    if (out.count == 0) {
        out.buckets.clear();
        return out;
    }
    // Delta min/max are unknowable from cumulative snapshots; the occupied
    // bucket bounds bound them within the histogram's own error budget.
    out.min = histogram_detail::bucket_lower(lo);
    out.max = histogram_detail::bucket_upper(hi);
    return out;
}

double TimeSeriesStore::bad_fraction(const std::string& name,
                                     std::uint64_t threshold,
                                     std::uint64_t window_ns,
                                     std::uint64_t now_ns) const {
    const HistogramSnapshot h = histogram_over(name, window_ns, now_ns);
    if (h.count == 0) return 0.0;
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        // A bucket counts as bad only when every value it can hold exceeds
        // the threshold — conservative within the bucket's <=12.5% width.
        if (histogram_detail::bucket_lower(i) > threshold) bad += h.buckets[i];
    }
    return static_cast<double>(bad) / static_cast<double>(h.count);
}

std::vector<std::string> TimeSeriesStore::series_names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(scalars_.size() + hists_.size());
    for (const auto& [name, s] : scalars_) out.push_back(name);
    for (const auto& [name, s] : hists_) out.push_back(name + ":histogram");
    return out;
}

std::string TimeSeriesStore::query_json(const std::string& name,
                                        std::uint64_t window_ns,
                                        std::uint64_t now_ns) const {
    const std::uint64_t from = now_ns > window_ns ? now_ns - window_ns : 0;
    std::string out = "{\"series\":\"" + name + "\",\"points\":[";
    bool first = true;
    for (const SeriesPoint& p : query(name, from, now_ns)) {
        if (!first) out.push_back(',');
        first = false;
        out += "[" + std::to_string(p.t_ns) + ",";
        append_num(out, p.value);
        out += "]";
    }
    out += "]}";
    return out;
}

std::string TimeSeriesStore::dump_json(std::uint64_t window_ns,
                                       std::uint64_t now_ns) const {
    const std::uint64_t from = now_ns > window_ns ? now_ns - window_ns : 0;
    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names.reserve(scalars_.size());
        for (const auto& [name, s] : scalars_) names.push_back(name);
    }
    std::string out = "{";
    bool first = true;
    for (const std::string& name : names) {
        const std::vector<SeriesPoint> pts = query(name, from, now_ns);
        if (pts.empty()) continue;
        if (!first) out.push_back(',');
        first = false;
        out += "\"" + name + "\":[";
        for (std::size_t i = 0; i < pts.size(); ++i) {
            if (i > 0) out.push_back(',');
            out += "[" + std::to_string(pts[i].t_ns) + ",";
            append_num(out, pts[i].value);
            out += "]";
        }
        out += "]";
    }
    out += "}";
    return out;
}

// ---- MetricsSampler --------------------------------------------------------

MetricsSampler::MetricsSampler(std::function<MetricsSnapshot()> source,
                               TimeSeriesStore* store, Options opts)
    : source_(std::move(source)), store_(store), opts_(opts) {
    check(static_cast<bool>(source_), "MetricsSampler: null source");
    check(store_ != nullptr, "MetricsSampler: null store");
    check(opts_.interval_ns > 0, "MetricsSampler: zero interval");
    clock_ = opts_.clock != nullptr ? opts_.clock : &steady_clock();
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::sample_once() {
    const MetricsSnapshot snap = source_();
    const std::uint64_t now = clock_->now_ns();
    store_->ingest(snap, now);
    samples_.fetch_add(1, std::memory_order_relaxed);
    if (on_sample_) on_sample_(now);
}

void MetricsSampler::start() {
    if (running_.load(std::memory_order_acquire)) return;
    {
        std::lock_guard<std::mutex> lock(stop_mu_);
        stop_requested_ = false;
    }
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { loop(); });
}

void MetricsSampler::stop() {
    if (!running_.load(std::memory_order_acquire)) return;
    {
        std::lock_guard<std::mutex> lock(stop_mu_);
        stop_requested_ = true;
    }
    stop_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    running_.store(false, std::memory_order_release);
}

void MetricsSampler::loop() {
    const auto interval = std::chrono::nanoseconds(opts_.interval_ns);
    std::unique_lock<std::mutex> lock(stop_mu_);
    while (!stop_requested_) {
        lock.unlock();
        sample_once();
        lock.lock();
        stop_cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    }
}

}  // namespace efld::obs
