// Rolling-window rates and latency quantiles over the injectable Clock.
//
// Cumulative-since-start counters can't answer "what is the cluster doing
// RIGHT NOW" — a burst an hour ago and a burst this second look the same.
// A RollingWindow is a ring of fixed-width time buckets (default 64 x 1s):
// record() lands in the bucket the clock says is current, recycling the slot
// if the ring has lapped it, and over(window_ns) sums only the buckets whose
// absolute index still falls inside the asked-for window — so idle gaps
// expire naturally (a stale bucket's index is simply too old to qualify) and
// a 60s window over a 64-bucket ring is exact.
//
// record() is mutex-guarded: windows track control-plane events (arrivals,
// deferrals, tokens-per-step flushes, TTFTs), not per-token hot-path work,
// so a lock keeps the wraparound logic obviously correct under TSan.
//
// WindowSnapshots are plain values that merge across shards — counts and
// bucket arrays add — so the cluster's windowed rate is the sum of shard
// rates and windowed quantiles come from the same log-bucket math as the
// cumulative histograms.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/clock.hpp"
#include "obs/latency_histogram.hpp"

namespace efld::obs {

// Point-in-time view of one window. Merge across shards, then ask for the
// rate or (when the source window records values) a HistogramSnapshot.
struct WindowSnapshot {
    std::uint64_t window_ns = 0;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  // meaningful only when count > 0
    std::uint64_t max = 0;
    std::vector<std::uint64_t> buckets;  // log-scale value buckets (optional)

    [[nodiscard]] double rate_per_s() const noexcept {
        return window_ns == 0 ? 0.0
                              : static_cast<double>(count) * 1e9 /
                                    static_cast<double>(window_ns);
    }
    void merge(const WindowSnapshot& other);
    // Rebuild a HistogramSnapshot (for quantile() / exposition) from the
    // windowed value buckets. Empty when the window tracks counts only.
    [[nodiscard]] HistogramSnapshot histogram() const;
};

class RollingWindow {
public:
    struct Options {
        std::uint64_t bucket_ns = 1'000'000'000;  // 1s buckets
        std::size_t buckets = 64;                 // ring span: 64s
        // Track a per-bucket log-scale value histogram (for windowed
        // quantiles) in addition to count/sum.
        bool with_histogram = false;
    };

    // Overloads, not default arguments: a nested aggregate's member defaults
    // cannot feed a default argument inside the enclosing class.
    RollingWindow();
    explicit RollingWindow(const Clock* clock);
    RollingWindow(const Clock* clock, Options opts);
    RollingWindow(const RollingWindow&) = delete;
    RollingWindow& operator=(const RollingWindow&) = delete;

    // Count an event (arrival, deferral, n tokens) in the current bucket.
    void add(std::uint64_t n = 1);
    // Record a value (latency ns): count + sum + value bucket.
    void record(std::uint64_t value);

    // Everything recorded within the trailing `window_ns` (clamped to the
    // ring's span). The current partially-filled bucket is included.
    [[nodiscard]] WindowSnapshot over(std::uint64_t window_ns) const;

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    struct Bucket {
        std::uint64_t index = kEmpty;  // absolute bucket number, or empty
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::vector<std::uint64_t> hist;  // kBucketCount when histogramming
    };
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

    // Returns the (recycled-if-stale) bucket for the clock's current time.
    Bucket& touch();

    const Clock* clock_;
    const Options opts_;
    mutable std::mutex mu_;
    std::vector<Bucket> ring_;
};

}  // namespace efld::obs
