#include "obs/trace.hpp"

#include <algorithm>

namespace efld::obs {

const char* to_string(TraceEvent e) noexcept {
    switch (e) {
        case TraceEvent::kSubmitted: return "submitted";
        case TraceEvent::kAdmitted: return "admitted";
        case TraceEvent::kDeferred: return "deferred";
        case TraceEvent::kPrefillDone: return "prefill_done";
        case TraceEvent::kFirstToken: return "first_token";
        case TraceEvent::kFailoverHarvest: return "failover_harvest";
        case TraceEvent::kResubmitted: return "resubmitted";
        case TraceEvent::kRetired: return "retired";
        case TraceEvent::kPrefixHit: return "prefix_hit";
        case TraceEvent::kCowCopy: return "cow_copy";
        case TraceEvent::kAlertPending: return "alert_pending";
        case TraceEvent::kAlertFiring: return "alert_firing";
        case TraceEvent::kAlertResolved: return "alert_resolved";
        case TraceEvent::kShed: return "shed";
    }
    return "unknown";
}

void TraceRecorder::record(std::uint64_t request_id, std::uint32_t shard,
                           TraceEvent event, std::uint64_t arg) {
    TraceRecord r;
    r.ts_ns = clock_->now_ns();
    r.request_id = request_id;
    r.shard = shard;
    r.event = event;
    r.arg = arg;
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
        ring_.push_back(r);
    } else {
        ring_[next_] = r;
        next_ = (next_ + 1) % capacity_;
        ++dropped_;
    }
}

std::vector<TraceRecord> TraceRecorder::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    // next_ is the oldest element once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
}

std::vector<TraceRecord> TraceRecorder::for_request(std::uint64_t request_id) const {
    std::vector<TraceRecord> all = snapshot();
    std::vector<TraceRecord> out;
    for (const TraceRecord& r : all) {
        if (r.request_id == request_id) out.push_back(r);
    }
    return out;
}

std::uint64_t TraceRecorder::dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::size_t TraceRecorder::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

void TraceRecorder::dump_jsonl(std::ostream& out) const {
    for (const TraceRecord& r : snapshot()) {
        out << "{\"ts_ns\":" << r.ts_ns << ",\"request\":" << r.request_id
            << ",\"shard\":" << r.shard << ",\"event\":\"" << to_string(r.event)
            << "\",\"arg\":" << r.arg << "}\n";
    }
}

}  // namespace efld::obs
