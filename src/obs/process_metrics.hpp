// Process-level liveness gauges: the baseline every dashboard and the TSDB
// sample regardless of serving traffic.
//
//   process_uptime_seconds — steady-clock seconds since the first export in
//                            this process (monotonic, restart-visible).
//   process_rss_bytes      — resident set size from /proc/self/status
//                            (VmRSS; 0 on platforms without procfs).
//   process_threads        — live thread count (Threads:; 0 without procfs).
//   process_build_info     — constant 1; its presence/absence is the signal
//                            (the standard Prometheus build_info idiom).
//
// Exported at the CLUSTER level (ClusterRouter::metrics_snapshot applies
// them after the shard merge) so a 4-shard scrape reports the process once,
// not four times — snapshot gauges ADD on merge.
#pragma once

#include <cstdint>

#include "obs/metrics_registry.hpp"

namespace efld::obs {

struct ProcessStats {
    double uptime_seconds = 0.0;
    std::uint64_t rss_bytes = 0;
    std::uint64_t threads = 0;
};

// Reads /proc/self/status (Linux; zeros elsewhere) and the process-start
// anchor. The first call anchors uptime at 0.
[[nodiscard]] ProcessStats read_process_stats();

// set_gauge()s the process_* series into `snapshot`.
void export_process_metrics(MetricsSnapshot& snapshot);

}  // namespace efld::obs
