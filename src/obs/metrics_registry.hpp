// Named metrics: counters, gauges, and latency histograms.
//
// Lock discipline: the registry mutex is taken only to register (get-or-
// create) and to snapshot. Registration returns stable references — the
// instruments live in node-stable unique_ptr slots — so hot paths hold a
// `Counter&`/`LatencyHistogram&` resolved once at init and never touch the
// mutex again. All instrument updates are single atomic RMWs.
//
// Snapshots are plain value types: merge() them across shards, then hand the
// result to obs::to_prometheus / obs::to_json for exposition. Snapshots also
// accept ad-hoc set_counter/set_gauge entries so callers can derive wire
// counters from an authoritative source (e.g. ServeStats) at snapshot time
// instead of double-booking them on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency_histogram.hpp"

namespace efld::obs {

class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> value_{0.0};
};

struct MetricsSnapshot {
    // Sorted maps so exposition output is deterministic.
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    void set_counter(const std::string& name, std::uint64_t v) { counters[name] = v; }
    void add_counter(const std::string& name, std::uint64_t v) { counters[name] += v; }
    void set_gauge(const std::string& name, double v) { gauges[name] = v; }

    // Cluster aggregation: counters and histograms add, gauges add too
    // (shard gauges are occupancy-style quantities where the cluster value
    // is the sum — queued requests, active sessions, committed pages).
    void merge(const MetricsSnapshot& other);
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    // Get-or-create; returned references stay valid for the registry's
    // lifetime.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& histogram(const std::string& name);

    [[nodiscard]] MetricsSnapshot snapshot() const;

private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace efld::obs
