#include "obs/process_metrics.hpp"

#include <cstdio>
#include <cstring>

#include "obs/clock.hpp"

namespace efld::obs {

namespace {

// Uptime anchor: the steady-clock instant of the first read in this process.
std::uint64_t process_start_ns() {
    static const std::uint64_t start = steady_clock().now_ns();
    return start;
}

#ifdef __linux__
void read_proc_status(std::uint64_t& rss_bytes, std::uint64_t& threads) {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return;
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        unsigned long long v = 0;
        if (std::sscanf(line, "VmRSS: %llu kB", &v) == 1) {
            rss_bytes = static_cast<std::uint64_t>(v) * 1024;
        } else if (std::sscanf(line, "Threads: %llu", &v) == 1) {
            threads = static_cast<std::uint64_t>(v);
        }
    }
    std::fclose(f);
}
#else
void read_proc_status(std::uint64_t&, std::uint64_t&) {}
#endif

}  // namespace

ProcessStats read_process_stats() {
    ProcessStats s;
    const std::uint64_t now = steady_clock().now_ns();
    const std::uint64_t start = process_start_ns();
    s.uptime_seconds =
        now > start ? static_cast<double>(now - start) * 1e-9 : 0.0;
    read_proc_status(s.rss_bytes, s.threads);
    return s;
}

void export_process_metrics(MetricsSnapshot& snapshot) {
    const ProcessStats s = read_process_stats();
    snapshot.set_gauge("process_uptime_seconds", s.uptime_seconds);
    snapshot.set_gauge("process_rss_bytes", static_cast<double>(s.rss_bytes));
    snapshot.set_gauge("process_threads", static_cast<double>(s.threads));
    snapshot.set_gauge("process_build_info", 1.0);
}

}  // namespace efld::obs
