// Fixed-bucket log-scale latency histogram (HDR-histogram style).
//
// record() is a handful of atomic relaxed RMWs — safe from any number of
// writer threads with no locking, cheap enough for per-token hot paths.
// Bucketing: values < 16 get exact unit buckets; above that each power-of-two
// octave splits into 8 sub-buckets (kSubBits = 3), so the relative bucket
// width is <= 1/8 and any quantile estimate is within ~12.5% of the true
// value. 496 buckets cover the full uint64 nanosecond range in ~4 KB.
//
// Snapshots are plain structs: merge() them across shards, ask for
// quantile(q), or feed them to obs::to_prometheus for wire exposition.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace efld::obs {

namespace histogram_detail {

inline constexpr std::uint32_t kSubBits = 3;
inline constexpr std::uint32_t kSubBuckets = 1u << kSubBits;  // 8
// Buckets 0..15 are exact; octaves 4..63 contribute 8 sub-buckets each.
inline constexpr std::size_t kBucketCount =
    (1u << (kSubBits + 1)) + (64 - kSubBits - 1) * kSubBuckets;  // 496

[[nodiscard]] constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < (1u << (kSubBits + 1))) return static_cast<std::size_t>(v);
    const std::uint32_t octave = 63u - static_cast<std::uint32_t>(std::countl_zero(v));
    const std::uint64_t sub = (v >> (octave - kSubBits)) & (kSubBuckets - 1);
    return static_cast<std::size_t>((octave - kSubBits) * kSubBuckets) +
           kSubBuckets + static_cast<std::size_t>(sub);
}

// Inclusive upper bound of a bucket: the largest value mapping to `index`.
[[nodiscard]] constexpr std::uint64_t bucket_upper(std::size_t index) noexcept {
    if (index < (1u << (kSubBits + 1))) return static_cast<std::uint64_t>(index);
    const std::uint64_t slot = index - kSubBuckets;
    const std::uint32_t octave = static_cast<std::uint32_t>(slot / kSubBuckets) + kSubBits;
    const std::uint64_t sub = slot % kSubBuckets;
    const std::uint64_t base = (std::uint64_t{1} << octave) +
                               (sub << (octave - kSubBits));
    const std::uint64_t width = std::uint64_t{1} << (octave - kSubBits);
    return base + width - 1;
}

[[nodiscard]] constexpr std::uint64_t bucket_lower(std::size_t index) noexcept {
    return index == 0 ? 0 : bucket_upper(index - 1) + 1;
}

}  // namespace histogram_detail

// Immutable point-in-time copy of a histogram (or a merge of several).
struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  // meaningful only when count > 0
    std::uint64_t max = 0;
    std::vector<std::uint64_t> buckets;  // kBucketCount entries (empty => all-zero)

    [[nodiscard]] bool empty() const noexcept { return count == 0; }
    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    }

    // Quantile estimate, q in [0, 1]. Linearly interpolates inside the
    // containing bucket and clamps to the observed min/max, so p0 == min and
    // p100 == max exactly and everything between is within the bucket's
    // <= 12.5% relative width.
    [[nodiscard]] std::uint64_t quantile(double q) const;

    // Accumulate another snapshot (cluster aggregation across shards).
    void merge(const HistogramSnapshot& other);
};

class LatencyHistogram {
public:
    static constexpr std::size_t kBucketCount = histogram_detail::kBucketCount;

    LatencyHistogram() = default;
    LatencyHistogram(const LatencyHistogram&) = delete;
    LatencyHistogram& operator=(const LatencyHistogram&) = delete;

    // Lock-free; any thread. Values are nanoseconds by convention but the
    // histogram is unit-agnostic.
    void record(std::uint64_t value) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }

    // Point-in-time copy. Concurrent record() calls may or may not be
    // included (counts are read bucket-by-bucket, monotonically — never
    // negative, never double-counted).
    [[nodiscard]] HistogramSnapshot snapshot() const;

    void reset() noexcept;

    // Exposed for tests: which bucket a value lands in and its bounds.
    [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
        return histogram_detail::bucket_index(v);
    }
    [[nodiscard]] static constexpr std::uint64_t bucket_upper_bound(std::size_t i) noexcept {
        return histogram_detail::bucket_upper(i);
    }
    [[nodiscard]] static constexpr std::uint64_t bucket_lower_bound(std::size_t i) noexcept {
        return histogram_detail::bucket_lower(i);
    }

private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
};

// Compact percentile digest for embedding in load/stats snapshots where a
// full 496-bucket snapshot would be overkill (e.g. ServeLoad shipped to the
// placement policy on every submit).
struct LatencySummary {
    std::uint64_t count = 0;
    std::uint64_t mean_ns = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p95_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t max_ns = 0;

    [[nodiscard]] static LatencySummary from(const HistogramSnapshot& s);
};

}  // namespace efld::obs
