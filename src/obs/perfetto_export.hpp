// Chrome-trace-event (Perfetto-loadable) JSON export of a cluster timeline.
//
// Merges two evidence streams into one `{"traceEvents":[...]}` document that
// ui.perfetto.dev / chrome://tracing open directly:
//   - TraceRecorder lifecycle events (submitted, admitted, first_token,
//     failover_harvest, resubmitted, retired, ...) become instant events and
//     per-(request, shard) residence slices, and
//   - Profiler spans become duration slices on the shard's driver track.
// Track mapping: pid = shard, tid 1 = the shard's driver thread (profiler
// phases), tid 2 = lifecycle instants, tid 3 = request residence slices.
// A failover emits a flow-event pair ("s" at the harvest on the dying
// shard, "f" at the resubmit on the survivor, shared id = request id), so
// the UI draws the arrow that follows one request across shards.
//
// Timestamps are the recorder's clock in microseconds (the trace-event
// unit); only differences are meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace efld::obs {

// One shard's profiler timeline, keyed by the shard id used as the pid.
struct ShardSpans {
    std::uint32_t shard = 0;
    std::vector<SpanRecord> spans;
};

[[nodiscard]] std::string to_perfetto_json(
    const std::vector<TraceRecord>& lifecycle,
    const std::vector<ShardSpans>& profiler_spans);

}  // namespace efld::obs
