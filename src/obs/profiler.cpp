#include "obs/profiler.hpp"

#include <cmath>
#include <string>

namespace efld::obs {

namespace {

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

// fetch_add for atomic<double> is C++20 but some standard libraries still
// lack it; a CAS loop is equivalent and only runs at step rate.
void atomic_add(std::atomic<double>& a, double delta) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + delta,
                                    std::memory_order_relaxed)) {
    }
}

}  // namespace

const char* to_string(Phase p) noexcept {
    switch (p) {
        case Phase::kQueuePick: return "queue_pick";
        case Phase::kAdmission: return "admission";
        case Phase::kPrefixProbe: return "prefix_probe";
        case Phase::kPrefixAdopt: return "prefix_adopt";
        case Phase::kPrefill: return "prefill";
        case Phase::kDecodeBatch: return "decode_batch";
        case Phase::kAttention: return "attention";
        case Phase::kSampling: return "sampling";
        case Phase::kRetire: return "retire";
        case Phase::kCount: break;
    }
    return "unknown";
}

void Profiler::enable(const Clock* clock, std::uint32_t shard_id,
                      std::size_t span_capacity) {
    clock_ = clock ? clock : &steady_clock();
    shard_ = shard_id;
    span_capacity_ = span_capacity;
    span_ring_.reserve(span_capacity);
    enabled_.store(true, std::memory_order_release);
}

void Profiler::bind_registry(MetricsRegistry& reg) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        const std::string name = std::string("serve_phase_") +
                                 to_string(static_cast<Phase>(i)) + "_wall_ns";
        hists_[i] = &reg.histogram(name);
    }
}

void Profiler::bump(Phase p, std::uint64_t wall_ns, double sim_ns,
                    double weight_walks, std::uint64_t count_delta) noexcept {
    Slot& s = slots_[static_cast<std::size_t>(p)];
    s.count.fetch_add(count_delta, std::memory_order_relaxed);
    s.wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
    if (sim_ns != 0.0) atomic_add(s.sim_ns, sim_ns);
    if (weight_walks != 0.0) atomic_add(s.weight_walks, weight_walks);
}

void Profiler::record_span(Phase p, std::uint64_t begin_ns,
                           std::uint64_t end_ns) {
    if (!enabled()) return;
    const std::uint64_t wall = end_ns > begin_ns ? end_ns - begin_ns : 0;
    bump(p, wall, 0.0, 0.0, 1);
    if (LatencyHistogram* h = hists_[static_cast<std::size_t>(p)]) {
        h->record(wall);
    }
    if (span_capacity_ == 0) return;
    const std::lock_guard<std::mutex> lock(span_mu_);
    if (span_ring_.size() < span_capacity_) {
        span_ring_.push_back({p, shard_, begin_ns, end_ns});
    } else {
        span_ring_[span_next_] = {p, shard_, begin_ns, end_ns};
        span_next_ = (span_next_ + 1) % span_capacity_;
        ++span_dropped_;
    }
}

void Profiler::add_wall(Phase p, std::uint64_t wall_ns) noexcept {
    if (!enabled()) return;
    bump(p, wall_ns, 0.0, 0.0, 1);
    if (LatencyHistogram* h = hists_[static_cast<std::size_t>(p)]) {
        h->record(wall_ns);
    }
}

void Profiler::attribute_step(std::uint64_t wall_ns, double sim_ns,
                              double weight_walks, std::size_t prefill_lanes,
                              std::size_t lanes) noexcept {
    if (!enabled() || lanes == 0) return;
    if (prefill_lanes > lanes) prefill_lanes = lanes;
    const double share =
        static_cast<double>(prefill_lanes) / static_cast<double>(lanes);
    // Prefill takes its lane share (rounded for the integer wall total);
    // decode takes the remainder by subtraction so sums stay exact.
    const std::uint64_t prefill_wall = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(wall_ns) * share));
    const double prefill_sim = sim_ns * share;
    const double prefill_walks = weight_walks * share;
    if (prefill_lanes > 0) {
        bump(Phase::kPrefill, prefill_wall, prefill_sim, prefill_walks, 1);
        if (LatencyHistogram* h =
                hists_[static_cast<std::size_t>(Phase::kPrefill)]) {
            h->record(prefill_wall);
        }
    }
    const std::uint64_t decode_wall = wall_ns - prefill_wall;
    bump(Phase::kDecodeBatch, decode_wall, sim_ns - prefill_sim,
         weight_walks - prefill_walks, 1);
    if (LatencyHistogram* h =
            hists_[static_cast<std::size_t>(Phase::kDecodeBatch)]) {
        h->record(decode_wall);
    }
}

PhaseTotals Profiler::totals(Phase p) const noexcept {
    const Slot& s = slots_[static_cast<std::size_t>(p)];
    PhaseTotals t;
    t.count = s.count.load(std::memory_order_relaxed);
    t.wall_ns = s.wall_ns.load(std::memory_order_relaxed);
    t.sim_ns = s.sim_ns.load(std::memory_order_relaxed);
    t.weight_walks = s.weight_walks.load(std::memory_order_relaxed);
    return t;
}

std::vector<SpanRecord> Profiler::spans() const {
    const std::lock_guard<std::mutex> lock(span_mu_);
    std::vector<SpanRecord> out;
    out.reserve(span_ring_.size());
    if (span_ring_.size() == span_capacity_ && span_capacity_ > 0) {
        // Full ring: oldest entry sits at the overwrite cursor.
        for (std::size_t i = 0; i < span_ring_.size(); ++i) {
            out.push_back(span_ring_[(span_next_ + i) % span_capacity_]);
        }
    } else {
        out = span_ring_;
    }
    return out;
}

std::uint64_t Profiler::spans_dropped() const {
    const std::lock_guard<std::mutex> lock(span_mu_);
    return span_dropped_;
}

void Profiler::export_into(MetricsSnapshot& snap) const {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        const PhaseTotals t = totals(static_cast<Phase>(i));
        if (t.count == 0) continue;
        const std::string base =
            std::string("serve_phase_") + to_string(static_cast<Phase>(i));
        snap.set_counter(base + "_count_total", t.count);
        snap.set_counter(base + "_wall_ns_total", t.wall_ns);
        snap.set_counter(base + "_sim_ns_total",
                         static_cast<std::uint64_t>(std::llround(t.sim_ns)));
        snap.set_gauge(base + "_weight_walks", t.weight_walks);
    }
}

}  // namespace efld::obs
