// Monotonic time seam for the observability layer.
//
// Every latency the serving stack measures (queue wait, TTFT, inter-token
// gap, end-to-end) and every trace timestamp flows through one Clock, so
// tests inject a ManualClock and assert exact durations instead of sleeping
// and hoping. Production uses the process-wide SteadyClock (steady_clock
// nanoseconds — monotonic, never steps with wall time).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace efld::obs {

class Clock {
public:
    virtual ~Clock() = default;
    // Monotonic nanoseconds. Only differences are meaningful; the epoch is
    // implementation-defined (steady_clock's for SteadyClock, 0 for a fresh
    // ManualClock).
    [[nodiscard]] virtual std::uint64_t now_ns() const noexcept = 0;
};

class SteadyClock final : public Clock {
public:
    [[nodiscard]] std::uint64_t now_ns() const noexcept override {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
};

// Deterministic test clock: time moves only when the test says so. Safe to
// advance from one thread while instrumented code reads it from others.
class ManualClock final : public Clock {
public:
    explicit ManualClock(std::uint64_t start_ns = 0) : now_(start_ns) {}

    [[nodiscard]] std::uint64_t now_ns() const noexcept override {
        return now_.load(std::memory_order_acquire);
    }
    void advance_ns(std::uint64_t delta) noexcept {
        now_.fetch_add(delta, std::memory_order_acq_rel);
    }
    void set_ns(std::uint64_t t) noexcept {
        now_.store(t, std::memory_order_release);
    }

private:
    std::atomic<std::uint64_t> now_;
};

// The process-wide default timebase (what instrumented code uses when no
// clock was injected).
[[nodiscard]] inline const Clock& steady_clock() noexcept {
    static const SteadyClock clock;
    return clock;
}

}  // namespace efld::obs
