// Render a MetricsSnapshot for the wire: Prometheus text exposition format
// and a JSON variant that additionally carries pre-computed percentiles.
// parse_prometheus() is the inverse used by tests and the CI smoke gate to
// assert the snapshot round-trips and counters match ClusterStats.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics_registry.hpp"

namespace efld::obs {

// Prometheus text format (version 0.0.4): one `# TYPE` line per metric,
// histograms as cumulative `<name>_bucket{le="..."}` series (only non-empty
// buckets plus the mandatory `+Inf`), `<name>_sum`, `<name>_count`. Values
// are nanoseconds throughout; metric names carry the `_ns` suffix to say so.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {name:
// {count, sum_ns, min_ns, max_ns, mean_ns, p50_ns, p95_ns, p99_ns}}}.
// Percentiles are computed here so consumers need no bucket math.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

// Minimal parser for the exposition output above (not a general Prometheus
// parser): returns sample name -> value for every non-comment line, with
// label sets kept verbatim in the name (e.g. `x_bucket{le="+Inf"}`).
// Throws efld::Error on lines that do not scan.
[[nodiscard]] std::map<std::string, double> parse_prometheus(const std::string& text);

}  // namespace efld::obs
