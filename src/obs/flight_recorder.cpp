#include "obs/flight_recorder.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <fstream>

#include "common/check.hpp"
#include "obs/exposition.hpp"

namespace efld::obs {

namespace {

// Filenames come from user-facing reasons ("alert:hot_queue"); keep them
// shell- and filesystem-safe.
std::string sanitize(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

}  // namespace

FlightRecorder::FlightRecorder(Options opts) : opts_(std::move(opts)) {
    check(!opts_.dir.empty(), "FlightRecorder: empty directory");
    clock_ = opts_.clock != nullptr ? opts_.clock : &steady_clock();
    ::mkdir(opts_.dir.c_str(), 0755);  // best-effort; capture reports failures
}

std::string FlightRecorder::capture(const std::string& reason,
                                    const MetricsSnapshot& metrics,
                                    const std::vector<TraceRecord>& trace,
                                    const std::vector<SpanRecord>& spans,
                                    const AlertEngine* alerts,
                                    const TimeSeriesStore* store) {
    const std::uint64_t now = clock_->now_ns();
    std::uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (seq_ >= opts_.max_bundles ||
            (captured_once_ && now >= last_capture_ns_ &&
             now - last_capture_ns_ < opts_.min_interval_ns)) {
            ++suppressed_;
            return "";
        }
        seq = seq_++;
        last_capture_ns_ = now;
        captured_once_ = true;
    }

    std::string body = "{\"reason\":\"" + sanitize(reason) + "\"";
    body += ",\"ts_ns\":" + std::to_string(now);
    body += ",\"seq\":" + std::to_string(seq);
    body += ",\"metrics\":" + to_json(metrics);
    body += ",\"alerts\":";
    body += alerts != nullptr ? alerts->to_json() : std::string("null");
    body += ",\"trace\":[";
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i > 0) body.push_back(',');
        const TraceRecord& r = trace[i];
        body += "{\"ts_ns\":" + std::to_string(r.ts_ns);
        body += ",\"request\":" + std::to_string(r.request_id);
        body += ",\"shard\":" + std::to_string(r.shard);
        body += ",\"event\":\"" + std::string(to_string(r.event)) + "\"";
        body += ",\"arg\":" + std::to_string(r.arg) + "}";
    }
    body += "],\"profiler_spans\":[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (i > 0) body.push_back(',');
        const SpanRecord& s = spans[i];
        body += "{\"phase\":\"" + std::string(to_string(s.phase)) + "\"";
        body += ",\"shard\":" + std::to_string(s.shard);
        body += ",\"begin_ns\":" + std::to_string(s.begin_ns);
        body += ",\"end_ns\":" + std::to_string(s.end_ns) + "}";
    }
    body += "],\"tsdb\":";
    body += store != nullptr ? store->dump_json(opts_.tail_window_ns, now)
                             : std::string("null");
    body += "}\n";

    const std::string path = opts_.dir + "/flight_" + std::to_string(seq) +
                             "_" + sanitize(reason) + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return "";
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    return out ? path : "";
}

std::uint64_t FlightRecorder::captures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seq_;
}

std::uint64_t FlightRecorder::suppressed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return suppressed_;
}

}  // namespace efld::obs
