#include "obs/latency_histogram.hpp"

#include <algorithm>

namespace efld::obs {

void LatencyHistogram::record(std::uint64_t value) noexcept {
    buckets_[histogram_detail::bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
    HistogramSnapshot s;
    s.buckets.resize(kBucketCount, 0);
    // Sum the buckets rather than trusting count_: a concurrent record() may
    // have bumped one but not the other, and the buckets are what quantile()
    // walks — keeping count == sum(buckets) keeps the estimate consistent.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        total += s.buckets[i];
    }
    s.count = total;
    s.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t lo = min_.load(std::memory_order_relaxed);
    s.min = (total == 0 || lo == ~std::uint64_t{0}) ? 0 : lo;
    s.max = max_.load(std::memory_order_relaxed);
    return s;
}

void LatencyHistogram::reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
    if (count == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target observation, 1-based.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const std::uint64_t n = buckets[i];
        if (n == 0) continue;
        if (seen + n >= rank) {
            const std::uint64_t lo = histogram_detail::bucket_lower(i);
            const std::uint64_t hi = histogram_detail::bucket_upper(i);
            // Interpolate position-within-bucket by rank.
            const double frac = n <= 1
                                    ? 0.5
                                    : static_cast<double>(rank - seen - 1) /
                                          static_cast<double>(n - 1);
            std::uint64_t est =
                lo + static_cast<std::uint64_t>(frac * static_cast<double>(hi - lo));
            est = std::clamp(est, min, max);
            return est;
        }
        seen += n;
    }
    return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
    if (other.count == 0) return;
    if (buckets.empty()) buckets.resize(histogram_detail::kBucketCount, 0);
    if (!other.buckets.empty()) {
        for (std::size_t i = 0; i < buckets.size() && i < other.buckets.size(); ++i) {
            buckets[i] += other.buckets[i];
        }
    }
    min = (count == 0) ? other.min : std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
    sum += other.sum;
}

LatencySummary LatencySummary::from(const HistogramSnapshot& s) {
    LatencySummary out;
    out.count = s.count;
    if (s.count == 0) return out;
    out.mean_ns = static_cast<std::uint64_t>(s.mean());
    out.p50_ns = s.quantile(0.50);
    out.p95_ns = s.quantile(0.95);
    out.p99_ns = s.quantile(0.99);
    out.max_ns = s.max;
    return out;
}

}  // namespace efld::obs
