// In-process time-series store: retained history over MetricsSnapshots.
//
// Instantaneous gauges cannot answer "is TTFT degrading" or "how fast are we
// burning the error budget" — those are questions about the last N minutes.
// The TimeSeriesStore ingests whole MetricsSnapshots (one per sampler tick)
// and retains every series at multiple resolutions simultaneously: each
// ingest lands in the current bucket of EVERY level's ring (1s×120, 10s×360,
// 60s×1440 by default), aggregating within coarse buckets as it goes — the
// downsampling a lap would force happens eagerly at write time, so recycling
// a fine slot never loses history the coarse rings still hold. Retention is
// therefore 2 minutes at 1s grain, 1 hour at 10s, 24 hours at 60s, in a few
// hundred KB.
//
// What gets stored per snapshot kind:
//   gauges    — the value, as-is.
//   counters  — converted to a per-second RATE from the delta against the
//               previous ingest (monotonic-reset safe: a counter that went
//               backwards restarts from its new value). Queries over a
//               counter series answer "events per second", not "total".
//   histograms — the DELTA against the previous ingest's snapshot, stored as
//               sparse (bucket, count) pairs. A range query can rebuild the
//               interval's full HistogramSnapshot, so windowed quantiles and
//               "fraction of samples above X" (the burn-rate engine's bad
//               fraction) come from real per-interval data.
//
// Everything is driven by caller-passed timestamps from the injectable
// obs::Clock — a backwards or frozen clock read makes ingest() a counted
// no-op instead of corrupting ring indices, and every test runs the whole
// subsystem on ManualClock. The MetricsSampler at the bottom is the
// production driver: a background thread that snapshots a source and ingests
// on a fixed interval; tests skip the thread and call sample_once().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/metrics_registry.hpp"

namespace efld::obs {

// One scalar observation: bucket start time and the aggregated value (mean
// of the samples that landed in the bucket — identical to the sample itself
// at the finest grain, where buckets almost always hold one ingest).
struct SeriesPoint {
    std::uint64_t t_ns = 0;
    double value = 0.0;
};

class TimeSeriesStore {
public:
    struct Level {
        std::uint64_t step_ns = 0;  // bucket width
        std::size_t slots = 0;      // ring length; retention = step * slots
    };
    struct Options {
        // Finest first. Defaults: 2 min at 1s, 1 h at 10s, 24 h at 60s.
        std::vector<Level> levels = {
            {1'000'000'000ull, 120},
            {10'000'000'000ull, 360},
            {60'000'000'000ull, 1440},
        };
    };

    TimeSeriesStore();
    explicit TimeSeriesStore(Options opts);
    TimeSeriesStore(const TimeSeriesStore&) = delete;
    TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

    // Ingests one snapshot observed at `now_ns`. Returns false — and stores
    // nothing — when now_ns is not strictly after the previous ingest (a
    // backwards or frozen clock read; dropped_ingests() counts them).
    bool ingest(const MetricsSnapshot& snapshot, std::uint64_t now_ns);

    // Scalar range query over [from_ns, to_ns]: served from the finest level
    // whose retention still covers from_ns (falling back to the coarsest),
    // points in ascending time order. Unknown series → empty.
    [[nodiscard]] std::vector<SeriesPoint> query(const std::string& name,
                                                 std::uint64_t from_ns,
                                                 std::uint64_t to_ns) const;

    // Most recent scalar observation of a series (finest level).
    [[nodiscard]] std::optional<SeriesPoint> latest(const std::string& name) const;

    // Rebuilds the merged histogram DELTA over the trailing window — what
    // actually happened to the distribution in [now - window, now], not
    // since process start. Empty snapshot when the series is unknown.
    [[nodiscard]] HistogramSnapshot histogram_over(const std::string& name,
                                                   std::uint64_t window_ns,
                                                   std::uint64_t now_ns) const;

    // Fraction of the window's histogram samples whose bucket lies entirely
    // above `threshold` — the burn-rate engine's bad-event fraction. 0 when
    // the window holds no samples.
    [[nodiscard]] double bad_fraction(const std::string& name,
                                      std::uint64_t threshold,
                                      std::uint64_t window_ns,
                                      std::uint64_t now_ns) const;

    [[nodiscard]] std::vector<std::string> series_names() const;
    [[nodiscard]] std::uint64_t ingests() const noexcept {
        return ingests_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t dropped_ingests() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const Options& options() const noexcept { return opts_; }

    // One series' tail as JSON: {"series":"name","points":[[t_ns,v],...]}.
    [[nodiscard]] std::string query_json(const std::string& name,
                                         std::uint64_t window_ns,
                                         std::uint64_t now_ns) const;
    // Every scalar series' tail — the flight recorder's TSDB section.
    [[nodiscard]] std::string dump_json(std::uint64_t window_ns,
                                        std::uint64_t now_ns) const;

private:
    struct ScalarBucket {
        std::uint64_t index = kEmpty;  // absolute bucket number at its level
        double sum = 0.0;
        std::uint64_t count = 0;
    };
    struct HistBucket {
        std::uint64_t index = kEmpty;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::vector<std::pair<std::uint32_t, std::uint64_t>> sparse;  // (bucket, n)
    };
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

    struct ScalarSeries {
        std::vector<std::vector<ScalarBucket>> rings;  // one ring per level
    };
    struct HistSeries {
        std::vector<std::vector<HistBucket>> rings;
        HistogramSnapshot prev;  // last ingested cumulative snapshot
        bool has_prev = false;
    };

    ScalarSeries& scalar_series(const std::string& name);
    HistSeries& hist_series(const std::string& name);
    void push_scalar(ScalarSeries& s, std::uint64_t now_ns, double value);
    // Level whose retention still covers from_ns (given now), finest first.
    [[nodiscard]] std::size_t level_for(std::uint64_t from_ns,
                                        std::uint64_t now_ns) const;
    [[nodiscard]] std::vector<SeriesPoint> collect(const ScalarSeries& s,
                                                   std::uint64_t from_ns,
                                                   std::uint64_t to_ns) const;

    const Options opts_;
    mutable std::mutex mu_;
    std::map<std::string, ScalarSeries> scalars_;
    std::map<std::string, HistSeries> hists_;
    std::map<std::string, std::uint64_t> counter_prev_;  // last raw cumulative
    std::uint64_t last_ingest_ns_ = 0;
    bool has_ingested_ = false;
    std::atomic<std::uint64_t> ingests_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

// Background driver: snapshots `source` and ingests into `store` every
// `interval_ns`, then invokes `on_sample` (the alert engine's evaluation
// hook) with the ingest timestamp. The thread paces itself on real time but
// stamps samples from the injectable clock, so a ManualClock test can run
// the identical code path via sample_once() with no thread at all.
class MetricsSampler {
public:
    struct Options {
        std::uint64_t interval_ns = 1'000'000'000;  // 1s
        const Clock* clock = nullptr;               // null = process steady clock
    };

    MetricsSampler(std::function<MetricsSnapshot()> source, TimeSeriesStore* store,
                   Options opts);
    ~MetricsSampler();  // stops the thread if running
    MetricsSampler(const MetricsSampler&) = delete;
    MetricsSampler& operator=(const MetricsSampler&) = delete;

    // Post-ingest hook (alert evaluation). Set before start().
    void set_on_sample(std::function<void(std::uint64_t now_ns)> cb) {
        on_sample_ = std::move(cb);
    }

    // One snapshot→ingest→evaluate cycle at the clock's current time. The
    // manual-stepping path tests (and the thread body) use.
    void sample_once();

    void start();  // idempotent
    void stop();   // idempotent, joins
    [[nodiscard]] bool running() const noexcept {
        return running_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::uint64_t samples() const noexcept {
        return samples_.load(std::memory_order_relaxed);
    }

private:
    void loop();

    std::function<MetricsSnapshot()> source_;
    TimeSeriesStore* store_;
    Options opts_;
    const Clock* clock_;
    std::function<void(std::uint64_t)> on_sample_;
    std::atomic<std::uint64_t> samples_{0};
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::mutex stop_mu_;
    std::condition_variable stop_cv_;
    bool stop_requested_ = false;  // guarded by stop_mu_
};

}  // namespace efld::obs
