// Declarative SLO alerting over the TimeSeriesStore.
//
// Two rule kinds, parsed from compact colon-separated specs (rules separated
// by commas, an optional `name=` prefix on each):
//
//   threshold:<metric>:<op>:<value>:<for>
//       Fires when the metric's LATEST sample satisfies `op value`
//       continuously for `for` (e.g. threshold:serve_queued:gt:8:2s).
//       Counter series compare against their per-second rate (that is what
//       the store retains); gauges against the value.
//
//   burnrate:<hist>:<slo_ms>:<objective>:<factor>:<long>:<short>
//       SRE multi-window burn-rate over an SLO objective like "TTFT p99
//       <= 250 ms for 99% of requests" (objective 0.99 or 99). The error
//       budget is the allowed bad fraction (1 - objective); the burn rate in
//       a window is (fraction of that window's histogram samples above
//       slo_ms) / budget. Fires when BOTH the long and the short window burn
//       faster than `factor` — the long window gives significance, the short
//       one proves the burn is still happening, so the alert neither flaps on
//       a blip nor keeps firing after recovery.
//
// State machine per rule: kInactive → kPending (condition true, not yet held
// for `for`) → kFiring → back to kInactive once the condition has been clear
// for the resolve hold (hysteresis; defaults to `for`, or the short window
// for burn-rate rules). Every transition lands in a bounded timeline ring,
// is pushed to subscribers (the SLO controller turns them into trace events,
// flight-recorder captures, and overload-governor engagement), and the
// current states export as serve_alert_* gauges/counters.
//
// Determinism: evaluate(now_ns) reads ONLY the store and its own state — no
// wall-clock, no randomness — so a scripted ManualClock run reproduces the
// full lifecycle bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/time_series.hpp"

namespace efld::obs {

enum class AlertState { kInactive = 0, kPending = 1, kFiring = 2 };

[[nodiscard]] constexpr std::string_view to_string(AlertState s) noexcept {
    switch (s) {
        case AlertState::kInactive: return "inactive";
        case AlertState::kPending: return "pending";
        case AlertState::kFiring: return "firing";
    }
    return "inactive";
}

enum class AlertOp { kGt, kGe, kLt, kLe };

struct AlertRule {
    enum class Kind { kThreshold, kBurnRate };

    std::string name;    // export suffix; parse assigns "rule<i>" if empty
    Kind kind = Kind::kThreshold;
    std::string metric;  // scalar series (threshold) / histogram (burnrate)

    // Threshold fields.
    AlertOp op = AlertOp::kGt;
    double value = 0.0;
    std::uint64_t for_ns = 0;

    // Burn-rate fields (metric values and the SLO threshold are nanoseconds).
    std::uint64_t slo_threshold_ns = 0;
    double objective = 0.0;  // e.g. 0.99
    double factor = 1.0;     // burn-rate multiple that fires
    std::uint64_t long_window_ns = 0;
    std::uint64_t short_window_ns = 0;

    // Hysteresis: the condition must stay clear this long before a firing
    // alert resolves. 0 = parse default (`for`, or the short window).
    std::uint64_t resolve_ns = 0;
};

// Parses one rule spec / a comma-separated list. Throws std::invalid_argument
// with the offending spec on any grammar error.
[[nodiscard]] AlertRule parse_alert_rule(std::string_view spec);
[[nodiscard]] std::vector<AlertRule> parse_alert_rules(std::string_view specs);

class AlertEngine {
public:
    struct Transition {
        std::uint64_t ts_ns = 0;
        std::uint32_t rule = 0;
        AlertState from = AlertState::kInactive;
        AlertState to = AlertState::kInactive;
        double value = 0.0;  // the evaluation that caused the transition
    };
    using Subscriber = std::function<void(const AlertRule&, const Transition&)>;

    explicit AlertEngine(const TimeSeriesStore* store);

    std::size_t add_rule(AlertRule rule);
    void subscribe(Subscriber cb);  // called inline from evaluate()

    // One evaluation pass over every rule at `now_ns` (the sampler calls
    // this right after each ingest). Deterministic: store + state only.
    void evaluate(std::uint64_t now_ns);

    [[nodiscard]] AlertState state(std::size_t rule) const;
    [[nodiscard]] std::size_t firing_count() const;
    [[nodiscard]] std::vector<Transition> timeline() const;  // oldest first
    [[nodiscard]] const std::vector<AlertRule>& rules() const noexcept {
        return rules_;
    }

    // serve_alerts_{firing,pending} gauges, serve_alerts_{fired,resolved}_total
    // counters, and per-rule serve_alert_state_<name> / serve_alert_value_<name>
    // gauges.
    void export_into(MetricsSnapshot& snapshot) const;

    // {"rules":[{name,kind,state,value,fired_total},...],
    //  "timeline":[{ts_ns,rule,from,to,value},...]} — the kAlerts wire body.
    [[nodiscard]] std::string to_json() const;

private:
    static constexpr std::uint64_t kNever = ~std::uint64_t{0};
    struct RuleState {
        AlertState state = AlertState::kInactive;
        std::uint64_t cond_since = kNever;
        std::uint64_t clear_since = kNever;
        double last_value = 0.0;
        std::uint64_t fired_total = 0;
        std::uint64_t resolved_total = 0;
    };

    // Evaluates one rule's condition; fills `value` with the comparable.
    [[nodiscard]] bool condition(const AlertRule& rule, std::uint64_t now_ns,
                                 double& value) const;
    void set_state(std::size_t i, AlertState to, std::uint64_t now_ns,
                   double value, std::vector<Transition>& fired);

    const TimeSeriesStore* store_;
    mutable std::mutex mu_;
    std::vector<AlertRule> rules_;
    std::vector<RuleState> states_;
    std::vector<Transition> timeline_;  // bounded ring, oldest first
    std::size_t timeline_cap_ = 256;
    std::vector<Subscriber> subscribers_;
};

}  // namespace efld::obs
