#include "common/bitpack.hpp"

namespace efld {

std::uint8_t Word512::nibble(std::size_t i) const noexcept {
    const std::uint64_t lane = lanes[i / 16];
    return static_cast<std::uint8_t>((lane >> ((i % 16) * 4)) & 0xFu);
}

void Word512::set_nibble(std::size_t i, std::uint8_t v) noexcept {
    std::uint64_t& lane = lanes[i / 16];
    const unsigned shift = static_cast<unsigned>((i % 16) * 4);
    lane = (lane & ~(0xFull << shift)) | (static_cast<std::uint64_t>(v & 0xFu) << shift);
}

std::uint8_t Word512::byte(std::size_t i) const noexcept {
    return static_cast<std::uint8_t>((lanes[i / 8] >> ((i % 8) * 8)) & 0xFFu);
}

void Word512::set_byte(std::size_t i, std::uint8_t v) noexcept {
    std::uint64_t& lane = lanes[i / 8];
    const unsigned shift = static_cast<unsigned>((i % 8) * 8);
    lane = (lane & ~(0xFFull << shift)) | (static_cast<std::uint64_t>(v) << shift);
}

std::uint16_t Word512::half_bits(std::size_t i) const noexcept {
    return static_cast<std::uint16_t>((lanes[i / 4] >> ((i % 4) * 16)) & 0xFFFFu);
}

void Word512::set_half_bits(std::size_t i, std::uint16_t v) noexcept {
    std::uint64_t& lane = lanes[i / 4];
    const unsigned shift = static_cast<unsigned>((i % 4) * 16);
    lane = (lane & ~(0xFFFFull << shift)) | (static_cast<std::uint64_t>(v) << shift);
}

std::uint32_t Word512::word32(std::size_t i) const noexcept {
    return static_cast<std::uint32_t>((lanes[i / 2] >> ((i % 2) * 32)) & 0xFFFF'FFFFu);
}

void Word512::set_word32(std::size_t i, std::uint32_t v) noexcept {
    std::uint64_t& lane = lanes[i / 2];
    const unsigned shift = static_cast<unsigned>((i % 2) * 32);
    lane = (lane & ~(0xFFFF'FFFFull << shift)) | (static_cast<std::uint64_t>(v) << shift);
}

std::vector<Word512> pack_nibbles(std::span<const std::uint8_t> values) {
    std::vector<Word512> words(div_ceil(values.size(), kNibblesPerWord));
    for (std::size_t i = 0; i < values.size(); ++i) {
        words[i / kNibblesPerWord].set_nibble(i % kNibblesPerWord, values[i]);
    }
    return words;
}

std::vector<std::uint8_t> unpack_nibbles(std::span<const Word512> words, std::size_t count) {
    std::vector<std::uint8_t> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = words[i / kNibblesPerWord].nibble(i % kNibblesPerWord);
    }
    return out;
}

std::vector<Word512> pack_halfs(std::span<const Fp16> values) {
    std::vector<Word512> words(div_ceil(values.size(), kHalfsPerWord));
    for (std::size_t i = 0; i < values.size(); ++i) {
        words[i / kHalfsPerWord].set_half(i % kHalfsPerWord, values[i]);
    }
    return words;
}

std::vector<Fp16> unpack_halfs(std::span<const Word512> words, std::size_t count) {
    std::vector<Fp16> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = words[i / kHalfsPerWord].half(i % kHalfsPerWord);
    }
    return out;
}

}  // namespace efld
