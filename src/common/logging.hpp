// Minimal leveled logging to stderr.
//
// The simulator is a library first; logging defaults to warnings-only so
// benches and tests stay quiet, and examples can turn on info/debug.
//
// Every line carries a monotonic timestamp (seconds since process start) and
// a short thread tag, so interleaved driver/handler/acceptor output is
// orderable and attributable. A LogScope additionally tags lines with the
// active request id — fault/failover log lines then correlate directly with
// the obs::TraceRecorder events for the same request:
//
//   [efld:WARN +1.042305 t:3f21 req:17] shard 0 failed: ...
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace efld {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& msg);

// The request id log lines on this thread are tagged with (0 = none active).
[[nodiscard]] std::uint64_t current_log_request() noexcept;

// RAII request-id tag for the current thread's log lines. Nests: an inner
// scope shadows the outer one and restores it on exit, so helpers can narrow
// the tag without coordinating with their callers.
class LogScope {
public:
    explicit LogScope(std::uint64_t request_id) noexcept;
    ~LogScope();
    LogScope(const LogScope&) = delete;
    LogScope& operator=(const LogScope&) = delete;

private:
    std::uint64_t saved_;
};

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream os;
    (os << ... << args);
    log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) { detail::log_fmt(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { detail::log_fmt(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { detail::log_fmt(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { detail::log_fmt(LogLevel::kError, args...); }

}  // namespace efld
