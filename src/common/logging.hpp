// Minimal leveled logging to stderr.
//
// The simulator is a library first; logging defaults to warnings-only so
// benches and tests stay quiet, and examples can turn on info/debug.
#pragma once

#include <sstream>
#include <string>

namespace efld {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream os;
    (os << ... << args);
    log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) { detail::log_fmt(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { detail::log_fmt(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { detail::log_fmt(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { detail::log_fmt(LogLevel::kError, args...); }

}  // namespace efld
