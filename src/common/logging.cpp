#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <mutex>
#include <thread>

namespace efld {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
thread_local std::uint64_t t_request_id = 0;

const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

// Monotonic seconds since the first log call — short enough to eyeball, and
// differences line up with the nanosecond trace timestamps (same clock).
double uptime_s() noexcept {
    static const std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

// 4-hex-digit thread tag: stable per thread, compact in the prefix.
std::uint16_t thread_tag() noexcept {
    return static_cast<std::uint16_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff);
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

std::uint64_t current_log_request() noexcept { return t_request_id; }

LogScope::LogScope(std::uint64_t request_id) noexcept : saved_(t_request_id) {
    t_request_id = request_id;
}

LogScope::~LogScope() { t_request_id = saved_; }

void log_message(LogLevel level, const std::string& msg) {
    char prefix[64];
    if (t_request_id != 0) {
        std::snprintf(prefix, sizeof(prefix), "[efld:%s +%.6f t:%04x req:%llu] ",
                      level_name(level), uptime_s(), thread_tag(),
                      static_cast<unsigned long long>(t_request_id));
    } else {
        std::snprintf(prefix, sizeof(prefix), "[efld:%s +%.6f t:%04x] ",
                      level_name(level), uptime_s(), thread_tag());
    }
    const std::scoped_lock lock(g_mutex);
    std::cerr << prefix << msg << '\n';
}

}  // namespace efld
