#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace efld {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
    const std::scoped_lock lock(g_mutex);
    std::cerr << "[efld:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace efld
