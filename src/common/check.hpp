// Lightweight precondition checking.
//
// Library code throws efld::Error on contract violations; this keeps the
// simulator honest about format invariants (bus alignment, group sizes,
// address-window fits) without scattering asserts that vanish in release.
#pragma once

#include <stdexcept>
#include <string>

namespace efld {

class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

inline void check(bool cond, const std::string& msg) {
    if (!cond) throw Error(msg);
}

}  // namespace efld
