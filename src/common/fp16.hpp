// IEEE 754 binary16 ("half") software floating point.
//
// The paper's VPU computes in FP16 on the FPGA fabric (multipliers, adder
// tree, accumulator). To make the simulator bit-comparable with such a
// datapath, every arithmetic operation here converts through float32 and
// rounds the result back to binary16 with round-to-nearest-even — the same
// result a correctly rounded FP16 FPU produces for +, -, *, /.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace efld {

class Fp16 {
public:
    constexpr Fp16() = default;

    // Named constructors keep implicit conversions out of user code.
    [[nodiscard]] static Fp16 from_float(float f) noexcept;
    [[nodiscard]] static constexpr Fp16 from_bits(std::uint16_t b) noexcept {
        Fp16 h;
        h.bits_ = b;
        return h;
    }

    [[nodiscard]] float to_float() const noexcept;
    [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

    [[nodiscard]] constexpr bool is_nan() const noexcept {
        return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
    }
    [[nodiscard]] constexpr bool is_inf() const noexcept {
        return (bits_ & 0x7FFFu) == 0x7C00u;
    }
    [[nodiscard]] constexpr bool is_zero() const noexcept {
        return (bits_ & 0x7FFFu) == 0;
    }
    [[nodiscard]] constexpr bool sign() const noexcept { return (bits_ & 0x8000u) != 0; }

    // Correctly rounded FP16 arithmetic (via float32, then RNE back to half).
    // float32 is exact for products/sums of two half values, so one rounding
    // step matches hardware behaviour.
    friend Fp16 operator+(Fp16 a, Fp16 b) noexcept;
    friend Fp16 operator-(Fp16 a, Fp16 b) noexcept;
    friend Fp16 operator*(Fp16 a, Fp16 b) noexcept;
    friend Fp16 operator/(Fp16 a, Fp16 b) noexcept;
    Fp16 operator-() const noexcept { return from_bits(static_cast<std::uint16_t>(bits_ ^ 0x8000u)); }

    friend bool operator==(Fp16 a, Fp16 b) noexcept;
    friend bool operator<(Fp16 a, Fp16 b) noexcept;

    static constexpr Fp16 zero() noexcept { return from_bits(0x0000); }
    static constexpr Fp16 one() noexcept { return from_bits(0x3C00); }
    static constexpr Fp16 infinity() noexcept { return from_bits(0x7C00); }
    static constexpr Fp16 neg_infinity() noexcept { return from_bits(0xFC00); }
    static constexpr Fp16 lowest() noexcept { return from_bits(0xFBFF); }   // -65504
    static constexpr Fp16 max() noexcept { return from_bits(0x7BFF); }      // +65504
    static constexpr Fp16 epsilon() noexcept { return from_bits(0x1400); }  // 2^-10

private:
    std::uint16_t bits_ = 0;
};

// Scalar conversion primitives (exposed for tests and packing code).
[[nodiscard]] std::uint16_t float_to_half_bits(float f) noexcept;
[[nodiscard]] float half_bits_to_float(std::uint16_t h) noexcept;

std::ostream& operator<<(std::ostream& os, Fp16 h);

}  // namespace efld
