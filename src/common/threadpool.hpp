// Persistent worker pool for the host-side decode fast path.
//
// Decoding is a sequence of row-parallel GEMVs and head-parallel attention
// ops, each far too short to amortize thread creation — so the pool keeps its
// workers alive across calls and hands them contiguous index ranges through
// `parallel_for`. The caller thread participates in the work, so a pool of
// size N uses N-1 spawned threads and `parallel_for(n, f)` on a size-1 pool
// degenerates to an inline call with zero synchronization.
//
// Determinism contract: `parallel_for` covers [0, n) as disjoint [begin, end)
// chunks, each executed exactly once. As long as the body writes only to
// locations indexed by its own range (the GEMV/attention pattern), results
// are bit-for-bit identical for every pool size and schedule.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace efld {

class ThreadPool {
public:
    // `threads` = total parallelism (including the calling thread);
    // 0 = hardware concurrency.
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return n_threads_; }

    // Runs `body(begin, end)` over a disjoint chunking of [0, n) and blocks
    // until every chunk finished. Re-entrant calls from inside a body are not
    // supported. The first exception thrown by a body is rethrown here after
    // all chunks complete.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t, std::size_t)>& body);

    // Process-wide pool shared by callers that don't own one (session/bench
    // wiring). Defaults to hardware concurrency on first use.
    static ThreadPool& global();
    // Replaces the global pool (joins the old workers). Not safe while another
    // thread is inside global().parallel_for.
    static void set_global_threads(std::size_t threads);

private:
    void worker_loop();
    // Claims chunks of the current job until none remain; returns how many
    // chunks this thread executed.
    std::size_t run_chunks(const std::function<void(std::size_t, std::size_t)>* body);

    [[nodiscard]] std::size_t chunk_begin(std::size_t c) const noexcept {
        return c * job_n_ / job_chunks_;
    }

    std::size_t n_threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable work_cv_;   // wakes workers on a new generation
    std::condition_variable done_cv_;   // wakes the caller on completion/idle
    std::uint64_t generation_ = 0;
    bool stop_ = false;

    // State of the in-flight job (valid for the current generation only).
    const std::function<void(std::size_t, std::size_t)>* job_body_ = nullptr;
    std::size_t job_n_ = 0;
    std::size_t job_chunks_ = 0;
    std::size_t next_chunk_ = 0;        // guarded by m_
    std::size_t chunks_done_ = 0;       // guarded by m_
    std::size_t active_workers_ = 0;    // workers currently running chunks
    std::exception_ptr first_error_;
};

}  // namespace efld
