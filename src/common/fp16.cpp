#include "common/fp16.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <ostream>

namespace efld {

namespace {

constexpr std::uint32_t kF32SignMask = 0x8000'0000u;
constexpr std::uint32_t kF32ExpMask = 0x7F80'0000u;

}  // namespace

std::uint16_t float_to_half_bits(float f) noexcept {
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint32_t sign = (x & kF32SignMask) >> 16;
    std::uint32_t absx = x & 0x7FFF'FFFFu;

    if ((x & kF32ExpMask) == kF32ExpMask) {
        // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
        if (absx > 0x7F80'0000u) {
            return static_cast<std::uint16_t>(sign | 0x7E00u);
        }
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }

    // Overflow to infinity: anything >= 2^16 - 2^4 (half max + 1/2 ulp).
    if (absx >= 0x4780'0000u) {  // 65536.0f
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    // Values in [65504 + 16, 65536) also round to inf; handle via rounding below
    // (the generic path covers them because the exponent arithmetic carries).

    const std::int32_t exp32 = static_cast<std::int32_t>((absx >> 23) & 0xFF) - 127;
    if (exp32 < -24) {
        // Too small even for a subnormal half: rounds to signed zero.
        return static_cast<std::uint16_t>(sign);
    }

    if (exp32 < -14) {
        // Subnormal half. Shift the (implicit-1) mantissa right with RNE.
        const std::uint32_t mant = (absx & 0x007F'FFFFu) | 0x0080'0000u;
        const int shift = -exp32 - 14 + 13;  // 14..24
        const std::uint32_t half_mant = mant >> shift;
        const std::uint32_t rem = mant & ((1u << shift) - 1u);
        const std::uint32_t halfway = 1u << (shift - 1);
        std::uint32_t rounded = half_mant;
        if (rem > halfway || (rem == halfway && (half_mant & 1u))) {
            ++rounded;
        }
        return static_cast<std::uint16_t>(sign | rounded);
    }

    // Normal half. Round the 23-bit mantissa to 10 bits with RNE, letting the
    // carry propagate into the exponent (this also produces inf for values in
    // (65504, 65520]).
    std::uint32_t half = ((static_cast<std::uint32_t>(exp32 + 15) << 10) |
                          ((absx >> 13) & 0x03FFu));
    const std::uint32_t rem = absx & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
        ++half;
    }
    return static_cast<std::uint16_t>(sign | half);
}

float half_bits_to_float(std::uint16_t h) noexcept {
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    const std::uint32_t mant = h & 0x03FFu;

    std::uint32_t out;
    if (exp == 0) {
        if (mant == 0) {
            out = sign;  // signed zero
        } else {
            // Subnormal: normalize into a float32 normal.
            int e = -1;
            std::uint32_t m = mant;
            do {
                ++e;
                m <<= 1;
            } while ((m & 0x0400u) == 0);
            out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
                  ((m & 0x03FFu) << 13);
        }
    } else if (exp == 0x1Fu) {
        out = sign | 0x7F80'0000u | (mant << 13);
    } else {
        out = sign | ((exp + 127 - 15) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(out);
}

Fp16 Fp16::from_float(float f) noexcept { return from_bits(float_to_half_bits(f)); }

float Fp16::to_float() const noexcept { return half_bits_to_float(bits_); }

Fp16 operator+(Fp16 a, Fp16 b) noexcept {
    return Fp16::from_float(a.to_float() + b.to_float());
}
Fp16 operator-(Fp16 a, Fp16 b) noexcept {
    return Fp16::from_float(a.to_float() - b.to_float());
}
Fp16 operator*(Fp16 a, Fp16 b) noexcept {
    return Fp16::from_float(a.to_float() * b.to_float());
}
Fp16 operator/(Fp16 a, Fp16 b) noexcept {
    return Fp16::from_float(a.to_float() / b.to_float());
}

bool operator==(Fp16 a, Fp16 b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;  // +0 == -0
    return a.bits() == b.bits();
}

bool operator<(Fp16 a, Fp16 b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    return a.to_float() < b.to_float();
}

std::ostream& operator<<(std::ostream& os, Fp16 h) { return os << h.to_float(); }

}  // namespace efld
