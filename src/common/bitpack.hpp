// 512-bit bus words and nibble packing.
//
// The accelerator moves data over a 512-bit stream (4 × 128-bit AXI ports
// concatenated). Word512 is the unit of every transaction in the simulator:
// one word carries 128 × u4 (a full quantization group of weights or zero
// points), 32 × fp16 (scales), or 16 × 32-bit KV scale-zero packs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/fp16.hpp"

namespace efld {

inline constexpr std::size_t kBusBits = 512;
inline constexpr std::size_t kBusBytes = kBusBits / 8;          // 64
inline constexpr std::size_t kNibblesPerWord = kBusBits / 4;    // 128
inline constexpr std::size_t kHalfsPerWord = kBusBits / 16;     // 32
inline constexpr std::size_t kU32PerWord = kBusBits / 32;       // 16

struct Word512 {
    std::array<std::uint64_t, 8> lanes{};

    [[nodiscard]] bool operator==(const Word512&) const = default;

    // u4 lanes ------------------------------------------------------------
    [[nodiscard]] std::uint8_t nibble(std::size_t i) const noexcept;
    void set_nibble(std::size_t i, std::uint8_t v) noexcept;

    // u8 lanes ------------------------------------------------------------
    [[nodiscard]] std::uint8_t byte(std::size_t i) const noexcept;
    void set_byte(std::size_t i, std::uint8_t v) noexcept;

    // u16 lanes (used for fp16 scales) -------------------------------------
    [[nodiscard]] std::uint16_t half_bits(std::size_t i) const noexcept;
    void set_half_bits(std::size_t i, std::uint16_t v) noexcept;

    [[nodiscard]] Fp16 half(std::size_t i) const noexcept {
        return Fp16::from_bits(half_bits(i));
    }
    void set_half(std::size_t i, Fp16 v) noexcept { set_half_bits(i, v.bits()); }

    // u32 lanes (used for KV scale-zero packs) ------------------------------
    [[nodiscard]] std::uint32_t word32(std::size_t i) const noexcept;
    void set_word32(std::size_t i, std::uint32_t v) noexcept;
};

// Packs `values.size()` nibbles (low 4 bits of each byte) into bus words,
// padding the tail word with zeros. One word per 128 values.
[[nodiscard]] std::vector<Word512> pack_nibbles(std::span<const std::uint8_t> values);

// Inverse of pack_nibbles; `count` selects how many leading nibbles are valid.
[[nodiscard]] std::vector<std::uint8_t> unpack_nibbles(std::span<const Word512> words,
                                                       std::size_t count);

// Packs fp16 values, 32 per word.
[[nodiscard]] std::vector<Word512> pack_halfs(std::span<const Fp16> values);
[[nodiscard]] std::vector<Fp16> unpack_halfs(std::span<const Word512> words,
                                             std::size_t count);

// Integer ceiling division / alignment helpers used throughout the formats.
[[nodiscard]] constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) noexcept {
    return (a + b - 1) / b;
}
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) noexcept {
    return div_ceil(v, a) * a;
}

}  // namespace efld
