#include "common/threadpool.hpp"

#include <algorithm>
#include <memory>

namespace efld {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? hw : 1;
    }
    n_threads_ = threads;
    workers_.reserve(n_threads_ - 1);
    for (std::size_t i = 0; i + 1 < n_threads_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::run_chunks(
    const std::function<void(std::size_t, std::size_t)>* body) {
    std::size_t executed = 0;
    for (;;) {
        std::size_t c;
        {
            std::lock_guard<std::mutex> lk(m_);
            if (next_chunk_ >= job_chunks_) break;
            c = next_chunk_++;
        }
        try {
            (*body)(chunk_begin(c), chunk_begin(c + 1));
        } catch (...) {
            std::lock_guard<std::mutex> lk(m_);
            if (!first_error_) first_error_ = std::current_exception();
        }
        ++executed;
    }
    return executed;
}

void ThreadPool::worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        ++active_workers_;
        const auto* body = job_body_;
        lk.unlock();
        const std::size_t done = run_chunks(body);
        lk.lock();
        chunks_done_ += done;
        --active_workers_;
        if (chunks_done_ == job_chunks_ && active_workers_ == 0) done_cv_.notify_all();
    }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    if (n_threads_ == 1 || n == 1) {
        body(0, n);
        return;
    }
    {
        std::unique_lock<std::mutex> lk(m_);
        // A worker that never woke for a previous (already exhausted) job may
        // still wake late and walk its chunk loop; let it drain before the
        // chunk counters are repointed at the new body.
        done_cv_.wait(lk, [&] { return active_workers_ == 0; });
        job_body_ = &body;
        job_n_ = n;
        // A few chunks per thread balances uneven rows without shrinking the
        // per-chunk work below the claim overhead.
        job_chunks_ = std::min(n, n_threads_ * 4);
        next_chunk_ = 0;
        chunks_done_ = 0;
        first_error_ = nullptr;
        ++generation_;
    }
    work_cv_.notify_all();

    const std::size_t mine = run_chunks(&body);

    std::unique_lock<std::mutex> lk(m_);
    chunks_done_ += mine;
    done_cv_.wait(lk, [&] { return chunks_done_ == job_chunks_ && active_workers_ == 0; });
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        lk.unlock();
        std::rethrow_exception(e);
    }
}

namespace {
std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool;
}  // namespace

ThreadPool& ThreadPool::global() {
    std::lock_guard<std::mutex> lk(g_global_pool_mu);
    if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
    return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
    std::lock_guard<std::mutex> lk(g_global_pool_mu);
    g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace efld
