// Scalar math helpers shared by the reference model and the analytic models.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace efld {

// Numerically stable softmax over `x`, written in place.
void softmax_inplace(std::span<float> x);

// Root mean square of a vector (RMSNorm denominator before epsilon).
[[nodiscard]] float root_mean_square(std::span<const float> x, float eps);

// SiLU (sigmoid-weighted linear unit): x * sigmoid(x).
[[nodiscard]] float silu(float x) noexcept;

// Dot product in float32 (golden reference for the VPU).
[[nodiscard]] float dot_f32(std::span<const float> a, std::span<const float> b);

// Cosine similarity; returns 1 for two zero vectors.
[[nodiscard]] double cosine_similarity(std::span<const float> a, std::span<const float> b);

// Bytes with binary prefixes.
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

// Memory-vendor units (the "4GB" on the box and "19.2 GB/s" bandwidth are
// decimal in DDR datasheets for rates, binary for capacity; we keep both and
// name them explicitly to avoid the classic 7% confusion).
inline constexpr double kGB = 1e9;

}  // namespace efld
