#include "common/mathutil.hpp"

#include <algorithm>

namespace efld {

void softmax_inplace(std::span<float> x) {
    if (x.empty()) return;
    const float m = *std::max_element(x.begin(), x.end());
    float denom = 0.0f;
    for (float& v : x) {
        v = std::exp(v - m);
        denom += v;
    }
    for (float& v : x) v /= denom;
}

float root_mean_square(std::span<const float> x, float eps) {
    double acc = 0.0;
    for (float v : x) acc += static_cast<double>(v) * static_cast<double>(v);
    return std::sqrt(static_cast<float>(acc / static_cast<double>(x.size())) + eps);
}

float silu(float x) noexcept { return x / (1.0f + std::exp(-x)); }

float dot_f32(std::span<const float> a, std::span<const float> b) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
    double num = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
        nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
    }
    if (na == 0.0 && nb == 0.0) return 1.0;
    if (na == 0.0 || nb == 0.0) return 0.0;
    return num / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace efld
