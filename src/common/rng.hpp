// Deterministic pseudo-random generation for synthetic weights and workloads.
//
// Everything in the repository that needs randomness takes an explicit seed so
// experiments are reproducible run-to-run; no global state, no std::rand.
#pragma once

#include <cstdint>
#include <cmath>

namespace efld {

// SplitMix64: used to expand a user seed into stream state.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

// xoshiro256**: fast, high-quality stream generator.
class Xoshiro256 {
public:
    explicit Xoshiro256(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : s_) s = sm.next();
    }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    // Uniform in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    // Uniform in [lo, hi).
    double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

    // Uniform integer in [0, n).
    std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

    // Standard normal via Box-Muller (stateless variant; discards the pair).
    double gaussian() noexcept {
        double u1 = uniform();
        while (u1 <= 1e-300) u1 = uniform();
        const double u2 = uniform();
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
    }

    double gaussian(double mean, double stddev) noexcept {
        return mean + stddev * gaussian();
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4]{};
};

}  // namespace efld
