#include "quant/scale_zero_pack.hpp"

#include "common/check.hpp"

namespace efld::quant {

std::uint32_t encode_scale_zero(KvQuantParams p) noexcept {
    return static_cast<std::uint32_t>(p.scale.bits()) |
           (static_cast<std::uint32_t>(p.zero) << 16);
    // bits [24,32) are the alignment dummy and stay zero
}

KvQuantParams decode_scale_zero(std::uint32_t pack) noexcept {
    KvQuantParams p;
    p.scale = Fp16::from_bits(static_cast<std::uint16_t>(pack & 0xFFFFu));
    p.zero = static_cast<std::uint8_t>((pack >> 16) & 0xFFu);
    return p;
}

ScaleZeroFifo::ScaleZeroFifo(std::size_t layers, std::size_t kv_heads)
    : layers_(layers), kv_heads_(kv_heads), slots_(2 * layers * kv_heads) {
    check(layers > 0 && kv_heads > 0, "ScaleZeroFifo: empty geometry");
}

std::size_t ScaleZeroFifo::index(std::size_t layer, std::size_t head, bool is_value) const {
    check(layer < layers_ && head < kv_heads_, "ScaleZeroFifo: slot out of range");
    return ((layer * kv_heads_) + head) * 2 + (is_value ? 1 : 0);
}

std::optional<Word512> ScaleZeroFifo::append(std::size_t layer, std::size_t head,
                                             bool is_value, std::size_t token_index,
                                             KvQuantParams params) {
    Slot& slot = slots_[index(layer, head, is_value)];
    const std::size_t lane = token_index % kPacksPerWord;
    check(lane == slot.fill, "ScaleZeroFifo: out-of-order token append");
    slot.word.set_word32(lane, encode_scale_zero(params));
    ++slot.fill;
    if (slot.fill == kPacksPerWord) {
        Word512 full = slot.word;
        slot = Slot{};
        ++words_flushed_;
        return full;
    }
    return std::nullopt;
}

std::optional<Word512> ScaleZeroFifo::flush(std::size_t layer, std::size_t head,
                                            bool is_value) {
    Slot& slot = slots_[index(layer, head, is_value)];
    if (slot.fill == 0) return std::nullopt;
    Word512 partial = slot.word;
    slot = Slot{};
    ++words_flushed_;
    return partial;
}

std::size_t ScaleZeroFifo::slot_fill(std::size_t layer, std::size_t head,
                                     bool is_value) const {
    return slots_[index(layer, head, is_value)].fill;
}

}  // namespace efld::quant
