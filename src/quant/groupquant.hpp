// W4A16 group quantization (AWQ-style storage layout).
//
// Weights are quantized per group of `group_size` consecutive input-channel
// elements within one output row: 4-bit codes, one fp16 scale and one 4-bit
// zero point per group. Activations stay fp16 — the VPU dequantizes on the
// fly (512b of codes -> 128 fp16 values) and multiplies in floating point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitpack.hpp"
#include "common/fp16.hpp"

namespace efld {
class ThreadPool;
}

namespace efld::quant {

struct GroupQuantConfig {
    std::size_t group_size = 128;  // weights per scale/zero group
    unsigned bits = 4;             // code width

    [[nodiscard]] std::uint8_t qmax() const noexcept {
        return static_cast<std::uint8_t>((1u << bits) - 1u);
    }
};

// GEMV accumulation contract ------------------------------------------------
//
// Every GEMV in QuantizedLinear — the readable oracle and all fast-path
// variants (scalar, thread-pool, packed-4bit) — performs the exact same float
// operations in the same order, so their outputs are bit-for-bit identical:
//
//   per row r (rows are independent; threading partitions rows):
//     acc = 0
//     per group g in row order:
//       kGemvLanes partial sums; element i of the group contributes
//         float(code_i - zero) * x_i   to partial[i mod kGemvLanes]
//       group_dot = ((p0+p1)+(p2+p3)) + ((p4+p5)+(p6+p7))
//       acc += scale_g * group_dot
//     y[r] = acc
//
// The per-group form mirrors the VPU datapath: centered integer codes
// accumulated against activations with a single scale multiply per group and
// no materialized fp weights. The independent partial lanes are the adder-tree
// analogue — they break the sequential float-add dependence so the fast path
// is throughput-bound, not add-latency-bound.
inline constexpr std::size_t kGemvLanes = 8;

// Skinny-GEMM extension of the same contract: `gemm` multiplies one weight
// matrix against a block of `batch` activation vectors, decoding each weight
// group ONCE and accumulating it into every batch column — the host-side
// mirror of the paper's bandwidth argument (decode is weight-bound, so the
// only way past the single-stream roofline is to amortize one weight walk
// across more activations). Each (row, column) pair performs exactly the
// per-row GEMV recipe above, so the result is bit-for-bit identical to
// `batch` independent gemv calls; columns are processed in register tiles of
// kGemmBatchTile, which bounds how many activation vectors one code decode
// feeds before the walk restarts.
inline constexpr std::size_t kGemmBatchTile = 8;

// A quantized linear layer y = W x, W of shape [rows, cols] (out, in).
// Codes are stored one byte per weight for the functional model; the bus
// format (weight_format.hpp) packs them to 4 bits.
class QuantizedLinear {
public:
    QuantizedLinear() = default;

    // Quantizes a row-major float matrix.
    [[nodiscard]] static QuantizedLinear quantize(std::span<const float> weights,
                                                  std::size_t rows, std::size_t cols,
                                                  const GroupQuantConfig& cfg);

    // Full dequantization to float (golden reference).
    [[nodiscard]] std::vector<float> dequantize() const;

    // Dequantizes a single group (128 weights) into `out`.
    void dequantize_group(std::size_t group_index, std::span<float> out) const;

    // Reference GEMV (the parity oracle): the contract above written as the
    // simplest possible loop. The span overload is allocation-free; the
    // vector form is kept for existing call sites.
    [[nodiscard]] std::vector<float> gemv_reference(std::span<const float> x) const;
    void gemv_reference(std::span<const float> x, std::span<float> y) const;

    // Fused fast path: dequantize×dot directly over the stored codes, no
    // scratch vectors, no allocation. Rows are partitioned across `pool`
    // when one is given (results are identical for any pool size).
    void gemv(std::span<const float> x, std::span<float> y,
              ThreadPool* pool = nullptr) const;

    // The seed-era GEMV, kept verbatim as the benchmark "before": dequantize
    // each group into a scratch vector, accumulate through one sequential
    // float chain, return a freshly allocated result. Numerics differ from
    // the contract above (strict element order, per-element scale), so it is
    // compared with tolerance, not bit-for-bit.
    [[nodiscard]] std::vector<float> gemv_seed_baseline(std::span<const float> x) const;

    // Bus-word form of the codes (bits must be 4): one Word512 per 128 codes,
    // row-major, as pack_nibbles lays them out.
    [[nodiscard]] std::vector<Word512> pack_codes() const;

    // Fast path walking the packed nibble stream the way the hardware streams
    // it (requires bits == 4 and group_size % 16 == 0 so groups align to the
    // 64-bit word lanes). `packed` must come from pack_codes().
    void gemv_packed(std::span<const Word512> packed, std::span<const float> x,
                     std::span<float> y, ThreadPool* pool = nullptr) const;

    // Skinny GEMM: Y = W X for a block of `batch` activation vectors.
    // X is [batch][cols] row-major (each session's activation contiguous),
    // Y is [batch][rows] row-major. Bit-for-bit identical to `batch`
    // independent gemv calls — batch == 1 degenerates to gemv exactly — but
    // the weight stream is decoded once per kGemmBatchTile columns instead of
    // once per column. Rows are partitioned across `pool` when one is given.
    void gemm(std::span<const float> x, std::size_t batch, std::span<float> y,
              ThreadPool* pool = nullptr) const;

    // The parity oracle for gemm: literally `batch` gemv_reference calls.
    void gemm_reference(std::span<const float> x, std::size_t batch,
                        std::span<float> y) const;

    // gemm over the packed nibble stream (same preconditions as gemv_packed).
    void gemm_packed(std::span<const Word512> packed, std::span<const float> x,
                     std::size_t batch, std::span<float> y,
                     ThreadPool* pool = nullptr) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t groups_per_row() const noexcept { return cols_ / cfg_.group_size; }
    [[nodiscard]] std::size_t num_groups() const noexcept { return rows_ * groups_per_row(); }
    [[nodiscard]] const GroupQuantConfig& config() const noexcept { return cfg_; }

    [[nodiscard]] std::span<const std::uint8_t> codes() const noexcept { return codes_; }
    [[nodiscard]] std::span<const Fp16> scales() const noexcept { return scales_; }
    [[nodiscard]] std::span<const std::uint8_t> zeros() const noexcept { return zeros_; }

    [[nodiscard]] Fp16 scale(std::size_t group) const { return scales_[group]; }
    [[nodiscard]] std::uint8_t zero(std::size_t group) const { return zeros_[group]; }

    // Memory footprint of the packed representation (codes at `bits` each,
    // fp16 scales, zero points packed at `bits` each) — the capacity model's
    // input.
    [[nodiscard]] std::uint64_t packed_bytes() const noexcept;

    // Construction from raw parts (used by the format decoder and tests).
    [[nodiscard]] static QuantizedLinear from_parts(std::vector<std::uint8_t> codes,
                                                    std::vector<Fp16> scales,
                                                    std::vector<std::uint8_t> zeros,
                                                    std::size_t rows, std::size_t cols,
                                                    const GroupQuantConfig& cfg);

private:
    void gemv_rows(const float* x, float* y, std::size_t row_begin,
                   std::size_t row_end) const;
    void gemv_packed_rows(const Word512* words, const float* x, float* y,
                          std::size_t row_begin, std::size_t row_end) const;
    void gemm_rows(const float* x, std::size_t batch, float* y,
                   std::size_t row_begin, std::size_t row_end) const;
    void gemm_packed_rows(const Word512* words, const float* x, std::size_t batch,
                          float* y, std::size_t row_begin, std::size_t row_end) const;

    GroupQuantConfig cfg_;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::uint8_t> codes_;  // rows*cols, values in [0, qmax]
    std::vector<Fp16> scales_;         // one per group
    std::vector<std::uint8_t> zeros_;  // one per group, values in [0, qmax]
};

// Quantization error metrics for tests and the AWQ search.
struct QuantError {
    double mse = 0.0;
    double max_abs = 0.0;
};

[[nodiscard]] QuantError quant_error(std::span<const float> original,
                                     std::span<const float> reconstructed);

}  // namespace efld::quant
