// W4A16 group quantization (AWQ-style storage layout).
//
// Weights are quantized per group of `group_size` consecutive input-channel
// elements within one output row: 4-bit codes, one fp16 scale and one 4-bit
// zero point per group. Activations stay fp16 — the VPU dequantizes on the
// fly (512b of codes -> 128 fp16 values) and multiplies in floating point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fp16.hpp"

namespace efld::quant {

struct GroupQuantConfig {
    std::size_t group_size = 128;  // weights per scale/zero group
    unsigned bits = 4;             // code width

    [[nodiscard]] std::uint8_t qmax() const noexcept {
        return static_cast<std::uint8_t>((1u << bits) - 1u);
    }
};

// A quantized linear layer y = W x, W of shape [rows, cols] (out, in).
// Codes are stored one byte per weight for the functional model; the bus
// format (weight_format.hpp) packs them to 4 bits.
class QuantizedLinear {
public:
    QuantizedLinear() = default;

    // Quantizes a row-major float matrix.
    [[nodiscard]] static QuantizedLinear quantize(std::span<const float> weights,
                                                  std::size_t rows, std::size_t cols,
                                                  const GroupQuantConfig& cfg);

    // Full dequantization to float (golden reference).
    [[nodiscard]] std::vector<float> dequantize() const;

    // Dequantizes a single group (128 weights) into `out`.
    void dequantize_group(std::size_t group_index, std::span<float> out) const;

    // Reference GEMV over the dequantized weights in float32.
    [[nodiscard]] std::vector<float> gemv_reference(std::span<const float> x) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t groups_per_row() const noexcept { return cols_ / cfg_.group_size; }
    [[nodiscard]] std::size_t num_groups() const noexcept { return rows_ * groups_per_row(); }
    [[nodiscard]] const GroupQuantConfig& config() const noexcept { return cfg_; }

    [[nodiscard]] std::span<const std::uint8_t> codes() const noexcept { return codes_; }
    [[nodiscard]] std::span<const Fp16> scales() const noexcept { return scales_; }
    [[nodiscard]] std::span<const std::uint8_t> zeros() const noexcept { return zeros_; }

    [[nodiscard]] Fp16 scale(std::size_t group) const { return scales_[group]; }
    [[nodiscard]] std::uint8_t zero(std::size_t group) const { return zeros_[group]; }

    // Memory footprint of the packed representation (codes at `bits` each,
    // fp16 scales, zero points packed at `bits` each) — the capacity model's
    // input.
    [[nodiscard]] std::uint64_t packed_bytes() const noexcept;

    // Construction from raw parts (used by the format decoder and tests).
    [[nodiscard]] static QuantizedLinear from_parts(std::vector<std::uint8_t> codes,
                                                    std::vector<Fp16> scales,
                                                    std::vector<std::uint8_t> zeros,
                                                    std::size_t rows, std::size_t cols,
                                                    const GroupQuantConfig& cfg);

private:
    GroupQuantConfig cfg_;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::uint8_t> codes_;  // rows*cols, values in [0, qmax]
    std::vector<Fp16> scales_;         // one per group
    std::vector<std::uint8_t> zeros_;  // one per group, values in [0, qmax]
};

// Quantization error metrics for tests and the AWQ search.
struct QuantError {
    double mse = 0.0;
    double max_abs = 0.0;
};

[[nodiscard]] QuantError quant_error(std::span<const float> original,
                                     std::span<const float> reconstructed);

}  // namespace efld::quant
