#include "quant/kvquant.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace efld::quant {

KvQuantized kv_quantize(std::span<const float> x) { return kv_quantize_bits(x, 8); }

KvQuantized kv_quantize_bits(std::span<const float> x, unsigned bits) {
    check(!x.empty(), "kv_quantize: empty vector");
    check(bits >= 2 && bits <= 8, "kv_quantize: bits out of range");
    const int qmax = static_cast<int>((1u << bits) - 1u);

    // Pass 1: min/max scan (the SPU tracks both in one pass over the stream).
    float lo = x[0], hi = x[0];
    for (const float v : x) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);

    float scale = (hi - lo) / static_cast<float>(qmax);
    if (scale <= 0.0f) scale = 1.0f;
    const Fp16 scale_h = Fp16::from_float(scale);
    const float s = scale_h.to_float();
    const std::uint8_t z = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(std::lround(-lo / s)), 0, qmax));

    // Pass 2: quantize against the stored fp16 scale.
    KvQuantized out;
    out.params = {scale_h, z};
    out.codes.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const int q = static_cast<int>(std::lround(x[i] / s)) + z;
        out.codes[i] = static_cast<std::uint8_t>(std::clamp(q, 0, qmax));
    }
    return out;
}

std::vector<float> kv_dequantize(std::span<const std::uint8_t> codes, KvQuantParams params) {
    std::vector<float> out(codes.size());
    kv_dequantize_into(codes, params, out);
    return out;
}

void kv_dequantize_into(std::span<const std::uint8_t> codes, KvQuantParams params,
                        std::span<float> out) {
    check(out.size() == codes.size(), "kv_dequantize_into: size mismatch");
    const float s = params.scale.to_float();
    const int z = params.zero;
    for (std::size_t i = 0; i < codes.size(); ++i) {
        out[i] = static_cast<float>(static_cast<int>(codes[i]) - z) * s;
    }
}

std::uint64_t kv8_bytes_per_token(std::uint64_t layers, std::uint64_t dim,
                                  std::uint64_t kv_heads) {
    const std::uint64_t code_bytes = 2 * layers * dim;          // 1 B per element
    const std::uint64_t pack_bytes = 2 * layers * kv_heads * 4; // 32-bit packs
    return code_bytes + pack_bytes;
}

}  // namespace efld::quant
