#include "quant/groupquant.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace efld::quant {

QuantizedLinear QuantizedLinear::quantize(std::span<const float> weights,
                                          std::size_t rows, std::size_t cols,
                                          const GroupQuantConfig& cfg) {
    check(rows > 0 && cols > 0, "QuantizedLinear: empty matrix");
    check(weights.size() == rows * cols, "QuantizedLinear: size mismatch");
    check(cfg.group_size > 0 && cols % cfg.group_size == 0,
          "QuantizedLinear: cols must be a multiple of group_size");
    check(cfg.bits >= 2 && cfg.bits <= 8, "QuantizedLinear: bits out of range");

    QuantizedLinear q;
    q.cfg_ = cfg;
    q.rows_ = rows;
    q.cols_ = cols;
    q.codes_.resize(rows * cols);
    const std::size_t groups = q.num_groups();
    q.scales_.resize(groups);
    q.zeros_.resize(groups);

    const float qmaxf = static_cast<float>(cfg.qmax());
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t base = g * cfg.group_size;
        float lo = weights[base];
        float hi = weights[base];
        for (std::size_t i = 1; i < cfg.group_size; ++i) {
            lo = std::min(lo, weights[base + i]);
            hi = std::max(hi, weights[base + i]);
        }
        // Asymmetric min/max quantization; zero point must itself be a code.
        lo = std::min(lo, 0.0f);
        hi = std::max(hi, 0.0f);
        float scale = (hi - lo) / qmaxf;
        if (scale <= 0.0f) scale = 1.0f;
        // The hardware stores the scale as fp16; quantize codes against the
        // *stored* scale so dequantization is exact w.r.t. the codes.
        const Fp16 scale_h = Fp16::from_float(scale);
        const float scale_q = scale_h.to_float();
        const std::uint8_t zp = static_cast<std::uint8_t>(std::clamp(
            static_cast<int>(std::lround(-lo / scale_q)), 0, static_cast<int>(cfg.qmax())));

        q.scales_[g] = scale_h;
        q.zeros_[g] = zp;
        for (std::size_t i = 0; i < cfg.group_size; ++i) {
            const int code = static_cast<int>(std::lround(weights[base + i] / scale_q)) + zp;
            q.codes_[base + i] = static_cast<std::uint8_t>(
                std::clamp(code, 0, static_cast<int>(cfg.qmax())));
        }
    }
    return q;
}

std::vector<float> QuantizedLinear::dequantize() const {
    std::vector<float> out(rows_ * cols_);
    const std::size_t groups = num_groups();
    for (std::size_t g = 0; g < groups; ++g) {
        dequantize_group(g, std::span<float>(out).subspan(g * cfg_.group_size, cfg_.group_size));
    }
    return out;
}

void QuantizedLinear::dequantize_group(std::size_t group_index, std::span<float> out) const {
    check(group_index < num_groups(), "dequantize_group: group out of range");
    check(out.size() == cfg_.group_size, "dequantize_group: bad output span");
    const float s = scales_[group_index].to_float();
    const int z = zeros_[group_index];
    const std::size_t base = group_index * cfg_.group_size;
    for (std::size_t i = 0; i < cfg_.group_size; ++i) {
        out[i] = static_cast<float>(static_cast<int>(codes_[base + i]) - z) * s;
    }
}

std::vector<float> QuantizedLinear::gemv_reference(std::span<const float> x) const {
    check(x.size() == cols_, "gemv_reference: input size mismatch");
    std::vector<float> y(rows_, 0.0f);
    std::vector<float> group(cfg_.group_size);
    const std::size_t gpr = groups_per_row();
    for (std::size_t r = 0; r < rows_; ++r) {
        float acc = 0.0f;
        for (std::size_t g = 0; g < gpr; ++g) {
            dequantize_group(r * gpr + g, group);
            const std::size_t xbase = g * cfg_.group_size;
            for (std::size_t i = 0; i < cfg_.group_size; ++i) {
                acc += group[i] * x[xbase + i];
            }
        }
        y[r] = acc;
    }
    return y;
}

std::uint64_t QuantizedLinear::packed_bytes() const noexcept {
    const std::uint64_t code_bits =
        static_cast<std::uint64_t>(rows_) * cols_ * cfg_.bits;
    const std::uint64_t scale_bits = static_cast<std::uint64_t>(num_groups()) * 16;
    const std::uint64_t zero_bits = static_cast<std::uint64_t>(num_groups()) * cfg_.bits;
    return (code_bits + scale_bits + zero_bits) / 8;
}

QuantizedLinear QuantizedLinear::from_parts(std::vector<std::uint8_t> codes,
                                            std::vector<Fp16> scales,
                                            std::vector<std::uint8_t> zeros,
                                            std::size_t rows, std::size_t cols,
                                            const GroupQuantConfig& cfg) {
    check(codes.size() == rows * cols, "from_parts: codes size mismatch");
    check(cols % cfg.group_size == 0, "from_parts: cols not group aligned");
    const std::size_t groups = rows * (cols / cfg.group_size);
    check(scales.size() == groups, "from_parts: scales size mismatch");
    check(zeros.size() == groups, "from_parts: zeros size mismatch");
    QuantizedLinear q;
    q.cfg_ = cfg;
    q.rows_ = rows;
    q.cols_ = cols;
    q.codes_ = std::move(codes);
    q.scales_ = std::move(scales);
    q.zeros_ = std::move(zeros);
    return q;
}

QuantError quant_error(std::span<const float> original,
                       std::span<const float> reconstructed) {
    QuantError e;
    for (std::size_t i = 0; i < original.size(); ++i) {
        const double d = static_cast<double>(original[i]) - static_cast<double>(reconstructed[i]);
        e.mse += d * d;
        e.max_abs = std::max(e.max_abs, std::abs(d));
    }
    if (!original.empty()) e.mse /= static_cast<double>(original.size());
    return e;
}

}  // namespace efld::quant
