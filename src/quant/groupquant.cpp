#include "quant/groupquant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/threadpool.hpp"

namespace efld::quant {

namespace {

// Fixed combine order of the partial lanes (the adder-tree reduction of the
// GEMV accumulation contract). Every GEMV variant must use exactly this.
inline float lane_tree_sum(const float p[kGemvLanes]) noexcept {
    return ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
}

// The fast paths keep the kGemvLanes partial sums in one 8-float vector where
// the compiler supports it: each SIMD lane IS a contract lane, every lane
// performs the same correctly-rounded convert/mul/add sequence as the scalar
// code, so results stay bit-for-bit identical to the oracle (FMA contraction
// is disabled project-wide).
#if defined(__GNUC__) || defined(__clang__)
#define EFLD_GEMV_VECTOR 1
typedef float GemvVf __attribute__((vector_size(kGemvLanes * sizeof(float))));
typedef int GemvVi __attribute__((vector_size(kGemvLanes * sizeof(int))));

inline float lane_tree_sum(const GemvVf& p) noexcept {
    return ((p[0] + p[1]) + (p[2] + p[3])) + ((p[4] + p[5]) + (p[6] + p[7]));
}
#endif

}  // namespace

QuantizedLinear QuantizedLinear::quantize(std::span<const float> weights,
                                          std::size_t rows, std::size_t cols,
                                          const GroupQuantConfig& cfg) {
    check(rows > 0 && cols > 0, "QuantizedLinear: empty matrix");
    check(weights.size() == rows * cols, "QuantizedLinear: size mismatch");
    check(cfg.group_size > 0 && cols % cfg.group_size == 0,
          "QuantizedLinear: cols must be a multiple of group_size");
    check(cfg.bits >= 2 && cfg.bits <= 8, "QuantizedLinear: bits out of range");

    QuantizedLinear q;
    q.cfg_ = cfg;
    q.rows_ = rows;
    q.cols_ = cols;
    q.codes_.resize(rows * cols);
    const std::size_t groups = q.num_groups();
    q.scales_.resize(groups);
    q.zeros_.resize(groups);

    const float qmaxf = static_cast<float>(cfg.qmax());
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t base = g * cfg.group_size;
        float lo = weights[base];
        float hi = weights[base];
        for (std::size_t i = 1; i < cfg.group_size; ++i) {
            lo = std::min(lo, weights[base + i]);
            hi = std::max(hi, weights[base + i]);
        }
        // Asymmetric min/max quantization; zero point must itself be a code.
        lo = std::min(lo, 0.0f);
        hi = std::max(hi, 0.0f);
        float scale = (hi - lo) / qmaxf;
        if (scale <= 0.0f) scale = 1.0f;
        // The hardware stores the scale as fp16; quantize codes against the
        // *stored* scale so dequantization is exact w.r.t. the codes.
        const Fp16 scale_h = Fp16::from_float(scale);
        const float scale_q = scale_h.to_float();
        const std::uint8_t zp = static_cast<std::uint8_t>(std::clamp(
            static_cast<int>(std::lround(-lo / scale_q)), 0, static_cast<int>(cfg.qmax())));

        q.scales_[g] = scale_h;
        q.zeros_[g] = zp;
        for (std::size_t i = 0; i < cfg.group_size; ++i) {
            const int code = static_cast<int>(std::lround(weights[base + i] / scale_q)) + zp;
            q.codes_[base + i] = static_cast<std::uint8_t>(
                std::clamp(code, 0, static_cast<int>(cfg.qmax())));
        }
    }
    return q;
}

std::vector<float> QuantizedLinear::dequantize() const {
    std::vector<float> out(rows_ * cols_);
    const std::size_t groups = num_groups();
    for (std::size_t g = 0; g < groups; ++g) {
        dequantize_group(g, std::span<float>(out).subspan(g * cfg_.group_size, cfg_.group_size));
    }
    return out;
}

void QuantizedLinear::dequantize_group(std::size_t group_index, std::span<float> out) const {
    check(group_index < num_groups(), "dequantize_group: group out of range");
    check(out.size() == cfg_.group_size, "dequantize_group: bad output span");
    const float s = scales_[group_index].to_float();
    const int z = zeros_[group_index];
    const std::size_t base = group_index * cfg_.group_size;
    for (std::size_t i = 0; i < cfg_.group_size; ++i) {
        out[i] = static_cast<float>(static_cast<int>(codes_[base + i]) - z) * s;
    }
}

void QuantizedLinear::gemv_reference(std::span<const float> x, std::span<float> y) const {
    check(x.size() == cols_, "gemv_reference: input size mismatch");
    check(y.size() == rows_, "gemv_reference: output size mismatch");
    const std::size_t gs = cfg_.group_size;
    const std::size_t gpr = groups_per_row();
    for (std::size_t r = 0; r < rows_; ++r) {
        float acc = 0.0f;
        for (std::size_t g = 0; g < gpr; ++g) {
            const std::size_t gi = r * gpr + g;
            const float s = scales_[gi].to_float();
            const int z = zeros_[gi];
            const std::size_t base = gi * gs;
            const std::size_t xbase = g * gs;
            float p[kGemvLanes] = {};
            for (std::size_t i = 0; i < gs; ++i) {
                p[i % kGemvLanes] +=
                    static_cast<float>(static_cast<int>(codes_[base + i]) - z) *
                    x[xbase + i];
            }
            acc += s * lane_tree_sum(p);
        }
        y[r] = acc;
    }
}

std::vector<float> QuantizedLinear::gemv_reference(std::span<const float> x) const {
    std::vector<float> y(rows_);
    gemv_reference(x, y);
    return y;
}

std::vector<float> QuantizedLinear::gemv_seed_baseline(std::span<const float> x) const {
    check(x.size() == cols_, "gemv_seed_baseline: input size mismatch");
    std::vector<float> y(rows_, 0.0f);
    std::vector<float> group(cfg_.group_size);
    const std::size_t gpr = groups_per_row();
    for (std::size_t r = 0; r < rows_; ++r) {
        float acc = 0.0f;
        for (std::size_t g = 0; g < gpr; ++g) {
            dequantize_group(r * gpr + g, group);
            const std::size_t xbase = g * cfg_.group_size;
            for (std::size_t i = 0; i < cfg_.group_size; ++i) {
                acc += group[i] * x[xbase + i];
            }
        }
        y[r] = acc;
    }
    return y;
}

void QuantizedLinear::gemv_rows(const float* x, float* y, std::size_t row_begin,
                                std::size_t row_end) const {
    const std::size_t gs = cfg_.group_size;
    const std::size_t gpr = groups_per_row();
    for (std::size_t r = row_begin; r < row_end; ++r) {
        const std::uint8_t* code = codes_.data() + r * cols_;
        const Fp16* srow = scales_.data() + r * gpr;
        const std::uint8_t* zrow = zeros_.data() + r * gpr;
        const float* xg = x;
        float acc = 0.0f;
        for (std::size_t g = 0; g < gpr; ++g) {
            const float s = srow[g].to_float();
            const int z = zrow[g];
#if EFLD_GEMV_VECTOR
            GemvVf p = {};
            const GemvVi zv = {z, z, z, z, z, z, z, z};
            std::size_t i = 0;
            for (; i + kGemvLanes <= gs; i += kGemvLanes) {
                const GemvVi ci = {code[i + 0], code[i + 1], code[i + 2], code[i + 3],
                                   code[i + 4], code[i + 5], code[i + 6], code[i + 7]};
                const GemvVf d = __builtin_convertvector(ci - zv, GemvVf);
                GemvVf xv;
                std::memcpy(&xv, xg + i, sizeof xv);
                p += d * xv;
            }
            for (; i < gs; ++i) {
                p[i % kGemvLanes] +=
                    static_cast<float>(static_cast<int>(code[i]) - z) * xg[i];
            }
#else
            float p[kGemvLanes] = {};
            std::size_t i = 0;
            for (; i + kGemvLanes <= gs; i += kGemvLanes) {
                p[0] += static_cast<float>(static_cast<int>(code[i + 0]) - z) * xg[i + 0];
                p[1] += static_cast<float>(static_cast<int>(code[i + 1]) - z) * xg[i + 1];
                p[2] += static_cast<float>(static_cast<int>(code[i + 2]) - z) * xg[i + 2];
                p[3] += static_cast<float>(static_cast<int>(code[i + 3]) - z) * xg[i + 3];
                p[4] += static_cast<float>(static_cast<int>(code[i + 4]) - z) * xg[i + 4];
                p[5] += static_cast<float>(static_cast<int>(code[i + 5]) - z) * xg[i + 5];
                p[6] += static_cast<float>(static_cast<int>(code[i + 6]) - z) * xg[i + 6];
                p[7] += static_cast<float>(static_cast<int>(code[i + 7]) - z) * xg[i + 7];
            }
            for (; i < gs; ++i) {
                p[i % kGemvLanes] +=
                    static_cast<float>(static_cast<int>(code[i]) - z) * xg[i];
            }
#endif
            acc += s * lane_tree_sum(p);
            code += gs;
            xg += gs;
        }
        y[r] = acc;
    }
}

void QuantizedLinear::gemv(std::span<const float> x, std::span<float> y,
                           ThreadPool* pool) const {
    check(x.size() == cols_, "gemv: input size mismatch");
    check(y.size() == rows_, "gemv: output size mismatch");
    if (pool != nullptr && pool->size() > 1 && rows_ > 1) {
        pool->parallel_for(rows_, [&](std::size_t b, std::size_t e) {
            gemv_rows(x.data(), y.data(), b, e);
        });
    } else {
        gemv_rows(x.data(), y.data(), 0, rows_);
    }
}

void QuantizedLinear::gemm_reference(std::span<const float> x, std::size_t batch,
                                     std::span<float> y) const {
    check(batch > 0, "gemm_reference: empty batch");
    check(x.size() == batch * cols_, "gemm_reference: input size mismatch");
    check(y.size() == batch * rows_, "gemm_reference: output size mismatch");
    for (std::size_t b = 0; b < batch; ++b) {
        gemv_reference(x.subspan(b * cols_, cols_), y.subspan(b * rows_, rows_));
    }
}

void QuantizedLinear::gemm_rows(const float* x, std::size_t batch, float* y,
                                std::size_t row_begin, std::size_t row_end) const {
    const std::size_t gs = cfg_.group_size;
    const std::size_t gpr = groups_per_row();
    // Batch columns run in register tiles: one decoded group feeds every
    // column of the tile before the next group is touched, so the code bytes
    // are read rows*cols times total regardless of batch — the weight walk is
    // amortized across the tile.
    for (std::size_t bt = 0; bt < batch; bt += kGemmBatchTile) {
        const std::size_t nb = std::min(kGemmBatchTile, batch - bt);
        for (std::size_t r = row_begin; r < row_end; ++r) {
            const std::uint8_t* code = codes_.data() + r * cols_;
            const Fp16* srow = scales_.data() + r * gpr;
            const std::uint8_t* zrow = zeros_.data() + r * gpr;
            float acc[kGemmBatchTile] = {};
            for (std::size_t g = 0; g < gpr; ++g) {
                const float s = srow[g].to_float();
                const int z = zrow[g];
                const std::size_t xoff = g * gs;
#if EFLD_GEMV_VECTOR
                GemvVf p[kGemmBatchTile] = {};
                const GemvVi zv = {z, z, z, z, z, z, z, z};
                std::size_t i = 0;
                for (; i + kGemvLanes <= gs; i += kGemvLanes) {
                    const GemvVi ci = {code[i + 0], code[i + 1], code[i + 2], code[i + 3],
                                       code[i + 4], code[i + 5], code[i + 6], code[i + 7]};
                    const GemvVf d = __builtin_convertvector(ci - zv, GemvVf);
                    for (std::size_t b = 0; b < nb; ++b) {
                        GemvVf xv;
                        std::memcpy(&xv, x + (bt + b) * cols_ + xoff + i, sizeof xv);
                        p[b] += d * xv;
                    }
                }
                for (; i < gs; ++i) {
                    const float d = static_cast<float>(static_cast<int>(code[i]) - z);
                    for (std::size_t b = 0; b < nb; ++b) {
                        p[b][i % kGemvLanes] += d * x[(bt + b) * cols_ + xoff + i];
                    }
                }
                for (std::size_t b = 0; b < nb; ++b) acc[b] += s * lane_tree_sum(p[b]);
#else
                float p[kGemmBatchTile][kGemvLanes] = {};
                std::size_t i = 0;
                for (; i < gs; ++i) {
                    const float d = static_cast<float>(static_cast<int>(code[i]) - z);
                    for (std::size_t b = 0; b < nb; ++b) {
                        p[b][i % kGemvLanes] += d * x[(bt + b) * cols_ + xoff + i];
                    }
                }
                for (std::size_t b = 0; b < nb; ++b) acc[b] += s * lane_tree_sum(p[b]);
#endif
                code += gs;
            }
            for (std::size_t b = 0; b < nb; ++b) y[(bt + b) * rows_ + r] = acc[b];
        }
    }
}

void QuantizedLinear::gemm(std::span<const float> x, std::size_t batch,
                           std::span<float> y, ThreadPool* pool) const {
    check(batch > 0, "gemm: empty batch");
    check(x.size() == batch * cols_, "gemm: input size mismatch");
    check(y.size() == batch * rows_, "gemm: output size mismatch");
    if (pool != nullptr && pool->size() > 1 && rows_ > 1) {
        pool->parallel_for(rows_, [&](std::size_t b, std::size_t e) {
            gemm_rows(x.data(), batch, y.data(), b, e);
        });
    } else {
        gemm_rows(x.data(), batch, y.data(), 0, rows_);
    }
}

std::vector<Word512> QuantizedLinear::pack_codes() const {
    check(cfg_.bits == 4, "pack_codes: codes wider than a nibble");
    return pack_nibbles(codes_);
}

void QuantizedLinear::gemv_packed_rows(const Word512* words, const float* x, float* y,
                                       std::size_t row_begin, std::size_t row_end) const {
    const std::size_t gs = cfg_.group_size;
    const std::size_t gpr = groups_per_row();
    for (std::size_t r = row_begin; r < row_end; ++r) {
        // Row starts are 16-nibble aligned (cols is a multiple of group_size,
        // group_size a multiple of 16), so groups walk whole 64-bit lanes.
        std::size_t nib = r * cols_;
        const Fp16* srow = scales_.data() + r * gpr;
        const std::uint8_t* zrow = zeros_.data() + r * gpr;
        float acc = 0.0f;
        for (std::size_t g = 0; g < gpr; ++g) {
            const float s = srow[g].to_float();
            const int z = zrow[g];
            const float* xg = x + g * gs;
#if EFLD_GEMV_VECTOR
            GemvVf p = {};
            const GemvVi zv = {z, z, z, z, z, z, z, z};
            for (std::size_t i = 0; i < gs; i += 16, nib += 16) {
                const std::uint64_t lane = words[nib >> 7].lanes[(nib >> 4) & 7];
                const float* xl = xg + i;
                // Elements i..i+7 land on contract lanes 0..7, then i+8..i+15
                // on the same lanes again — two sequential vector steps keep
                // each lane's accumulation order identical to the oracle's.
                const GemvVi c0 = {
                    static_cast<int>((lane >> 0) & 0xF),  static_cast<int>((lane >> 4) & 0xF),
                    static_cast<int>((lane >> 8) & 0xF),  static_cast<int>((lane >> 12) & 0xF),
                    static_cast<int>((lane >> 16) & 0xF), static_cast<int>((lane >> 20) & 0xF),
                    static_cast<int>((lane >> 24) & 0xF), static_cast<int>((lane >> 28) & 0xF)};
                const GemvVi c1 = {
                    static_cast<int>((lane >> 32) & 0xF), static_cast<int>((lane >> 36) & 0xF),
                    static_cast<int>((lane >> 40) & 0xF), static_cast<int>((lane >> 44) & 0xF),
                    static_cast<int>((lane >> 48) & 0xF), static_cast<int>((lane >> 52) & 0xF),
                    static_cast<int>((lane >> 56) & 0xF), static_cast<int>((lane >> 60) & 0xF)};
                GemvVf x0, x1;
                std::memcpy(&x0, xl, sizeof x0);
                std::memcpy(&x1, xl + kGemvLanes, sizeof x1);
                p += __builtin_convertvector(c0 - zv, GemvVf) * x0;
                p += __builtin_convertvector(c1 - zv, GemvVf) * x1;
            }
            acc += s * lane_tree_sum(p);
#else
            float p[kGemvLanes] = {};
            for (std::size_t i = 0; i < gs; i += 16, nib += 16) {
                const std::uint64_t lane = words[nib >> 7].lanes[(nib >> 4) & 7];
                const float* xl = xg + i;
                p[0] += static_cast<float>(static_cast<int>((lane >> 0) & 0xF) - z) * xl[0];
                p[1] += static_cast<float>(static_cast<int>((lane >> 4) & 0xF) - z) * xl[1];
                p[2] += static_cast<float>(static_cast<int>((lane >> 8) & 0xF) - z) * xl[2];
                p[3] += static_cast<float>(static_cast<int>((lane >> 12) & 0xF) - z) * xl[3];
                p[4] += static_cast<float>(static_cast<int>((lane >> 16) & 0xF) - z) * xl[4];
                p[5] += static_cast<float>(static_cast<int>((lane >> 20) & 0xF) - z) * xl[5];
                p[6] += static_cast<float>(static_cast<int>((lane >> 24) & 0xF) - z) * xl[6];
                p[7] += static_cast<float>(static_cast<int>((lane >> 28) & 0xF) - z) * xl[7];
                p[0] += static_cast<float>(static_cast<int>((lane >> 32) & 0xF) - z) * xl[8];
                p[1] += static_cast<float>(static_cast<int>((lane >> 36) & 0xF) - z) * xl[9];
                p[2] += static_cast<float>(static_cast<int>((lane >> 40) & 0xF) - z) * xl[10];
                p[3] += static_cast<float>(static_cast<int>((lane >> 44) & 0xF) - z) * xl[11];
                p[4] += static_cast<float>(static_cast<int>((lane >> 48) & 0xF) - z) * xl[12];
                p[5] += static_cast<float>(static_cast<int>((lane >> 52) & 0xF) - z) * xl[13];
                p[6] += static_cast<float>(static_cast<int>((lane >> 56) & 0xF) - z) * xl[14];
                p[7] += static_cast<float>(static_cast<int>((lane >> 60) & 0xF) - z) * xl[15];
            }
            acc += s * lane_tree_sum(p);
#endif
        }
        y[r] = acc;
    }
}

void QuantizedLinear::gemv_packed(std::span<const Word512> packed,
                                  std::span<const float> x, std::span<float> y,
                                  ThreadPool* pool) const {
    check(cfg_.bits == 4, "gemv_packed: codes wider than a nibble");
    check(cfg_.group_size % 16 == 0, "gemv_packed: group_size must align to word lanes");
    check(x.size() == cols_, "gemv_packed: input size mismatch");
    check(y.size() == rows_, "gemv_packed: output size mismatch");
    check(packed.size() == div_ceil(rows_ * cols_, kNibblesPerWord),
          "gemv_packed: packed stream size mismatch");
    if (pool != nullptr && pool->size() > 1 && rows_ > 1) {
        pool->parallel_for(rows_, [&](std::size_t b, std::size_t e) {
            gemv_packed_rows(packed.data(), x.data(), y.data(), b, e);
        });
    } else {
        gemv_packed_rows(packed.data(), x.data(), y.data(), 0, rows_);
    }
}

void QuantizedLinear::gemm_packed_rows(const Word512* words, const float* x,
                                       std::size_t batch, float* y,
                                       std::size_t row_begin, std::size_t row_end) const {
    const std::size_t gs = cfg_.group_size;
    const std::size_t gpr = groups_per_row();
    for (std::size_t bt = 0; bt < batch; bt += kGemmBatchTile) {
        const std::size_t nb = std::min(kGemmBatchTile, batch - bt);
        for (std::size_t r = row_begin; r < row_end; ++r) {
            std::size_t nib = r * cols_;
            const Fp16* srow = scales_.data() + r * gpr;
            const std::uint8_t* zrow = zeros_.data() + r * gpr;
            float acc[kGemmBatchTile] = {};
            for (std::size_t g = 0; g < gpr; ++g) {
                const float s = srow[g].to_float();
                const int z = zrow[g];
                const std::size_t xoff = g * gs;
#if EFLD_GEMV_VECTOR
                GemvVf p[kGemmBatchTile] = {};
                const GemvVi zv = {z, z, z, z, z, z, z, z};
                for (std::size_t i = 0; i < gs; i += 16, nib += 16) {
                    const std::uint64_t lane = words[nib >> 7].lanes[(nib >> 4) & 7];
                    const GemvVi c0 = {
                        static_cast<int>((lane >> 0) & 0xF),  static_cast<int>((lane >> 4) & 0xF),
                        static_cast<int>((lane >> 8) & 0xF),  static_cast<int>((lane >> 12) & 0xF),
                        static_cast<int>((lane >> 16) & 0xF), static_cast<int>((lane >> 20) & 0xF),
                        static_cast<int>((lane >> 24) & 0xF), static_cast<int>((lane >> 28) & 0xF)};
                    const GemvVi c1 = {
                        static_cast<int>((lane >> 32) & 0xF), static_cast<int>((lane >> 36) & 0xF),
                        static_cast<int>((lane >> 40) & 0xF), static_cast<int>((lane >> 44) & 0xF),
                        static_cast<int>((lane >> 48) & 0xF), static_cast<int>((lane >> 52) & 0xF),
                        static_cast<int>((lane >> 56) & 0xF), static_cast<int>((lane >> 60) & 0xF)};
                    const GemvVf d0 = __builtin_convertvector(c0 - zv, GemvVf);
                    const GemvVf d1 = __builtin_convertvector(c1 - zv, GemvVf);
                    for (std::size_t b = 0; b < nb; ++b) {
                        const float* xl = x + (bt + b) * cols_ + xoff + i;
                        GemvVf x0, x1;
                        std::memcpy(&x0, xl, sizeof x0);
                        std::memcpy(&x1, xl + kGemvLanes, sizeof x1);
                        p[b] += d0 * x0;
                        p[b] += d1 * x1;
                    }
                }
                for (std::size_t b = 0; b < nb; ++b) acc[b] += s * lane_tree_sum(p[b]);
#else
                float p[kGemmBatchTile][kGemvLanes] = {};
                for (std::size_t i = 0; i < gs; i += 16, nib += 16) {
                    const std::uint64_t lane = words[nib >> 7].lanes[(nib >> 4) & 7];
                    for (std::size_t b = 0; b < nb; ++b) {
                        const float* xl = x + (bt + b) * cols_ + xoff + i;
                        for (std::size_t e = 0; e < 16; ++e) {
                            p[b][e % kGemvLanes] +=
                                static_cast<float>(
                                    static_cast<int>((lane >> (4 * e)) & 0xF) - z) *
                                xl[e];
                        }
                    }
                }
                for (std::size_t b = 0; b < nb; ++b) acc[b] += s * lane_tree_sum(p[b]);
#endif
            }
            for (std::size_t b = 0; b < nb; ++b) y[(bt + b) * rows_ + r] = acc[b];
        }
    }
}

void QuantizedLinear::gemm_packed(std::span<const Word512> packed,
                                  std::span<const float> x, std::size_t batch,
                                  std::span<float> y, ThreadPool* pool) const {
    check(cfg_.bits == 4, "gemm_packed: codes wider than a nibble");
    check(cfg_.group_size % 16 == 0, "gemm_packed: group_size must align to word lanes");
    check(batch > 0, "gemm_packed: empty batch");
    check(x.size() == batch * cols_, "gemm_packed: input size mismatch");
    check(y.size() == batch * rows_, "gemm_packed: output size mismatch");
    check(packed.size() == div_ceil(rows_ * cols_, kNibblesPerWord),
          "gemm_packed: packed stream size mismatch");
    if (pool != nullptr && pool->size() > 1 && rows_ > 1) {
        pool->parallel_for(rows_, [&](std::size_t b, std::size_t e) {
            gemm_packed_rows(packed.data(), x.data(), batch, y.data(), b, e);
        });
    } else {
        gemm_packed_rows(packed.data(), x.data(), batch, y.data(), 0, rows_);
    }
}

std::uint64_t QuantizedLinear::packed_bytes() const noexcept {
    const std::uint64_t code_bits =
        static_cast<std::uint64_t>(rows_) * cols_ * cfg_.bits;
    const std::uint64_t scale_bits = static_cast<std::uint64_t>(num_groups()) * 16;
    const std::uint64_t zero_bits = static_cast<std::uint64_t>(num_groups()) * cfg_.bits;
    return (code_bits + scale_bits + zero_bits) / 8;
}

QuantizedLinear QuantizedLinear::from_parts(std::vector<std::uint8_t> codes,
                                            std::vector<Fp16> scales,
                                            std::vector<std::uint8_t> zeros,
                                            std::size_t rows, std::size_t cols,
                                            const GroupQuantConfig& cfg) {
    check(codes.size() == rows * cols, "from_parts: codes size mismatch");
    check(cols % cfg.group_size == 0, "from_parts: cols not group aligned");
    const std::size_t groups = rows * (cols / cfg.group_size);
    check(scales.size() == groups, "from_parts: scales size mismatch");
    check(zeros.size() == groups, "from_parts: zeros size mismatch");
    QuantizedLinear q;
    q.cfg_ = cfg;
    q.rows_ = rows;
    q.cols_ = cols;
    q.codes_ = std::move(codes);
    q.scales_ = std::move(scales);
    q.zeros_ = std::move(zeros);
    return q;
}

QuantError quant_error(std::span<const float> original,
                       std::span<const float> reconstructed) {
    QuantError e;
    for (std::size_t i = 0; i < original.size(); ++i) {
        const double d = static_cast<double>(original[i]) - static_cast<double>(reconstructed[i]);
        e.mse += d * d;
        e.max_abs = std::max(e.max_abs, std::abs(d));
    }
    if (!original.empty()) e.mse /= static_cast<double>(original.size());
    return e;
}

}  // namespace efld::quant
