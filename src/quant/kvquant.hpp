// KV8: 8-bit linear quantization of the key/value cache (§IV.B, §VI.C6).
//
// Keys and values are quantized on-chip as they are produced (one vector =
// one head's key or value for one token) and dequantized when fetched back.
// Per vector: scale s = (max - min) / 255, zero magnitude z = round(-min/s);
// code q = round(x/s + z) in [0, 255]; dequant x' = (q - z) * s.
// The (s, z) pair is carried as a 32-bit scale-zero pack (fp16 + u8 + pad).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/fp16.hpp"

namespace efld::quant {

struct KvQuantParams {
    Fp16 scale = Fp16::one();
    std::uint8_t zero = 0;  // magnitude of the (negative) zero point
};

struct KvQuantized {
    std::vector<std::uint8_t> codes;
    KvQuantParams params;
};

// Quantizes one K or V vector (two passes, like the SPU submodule).
[[nodiscard]] KvQuantized kv_quantize(std::span<const float> x);

// Variable-width variant for precision studies (KV4 vs KV8, §IV.B). Codes
// still occupy one byte of storage each; `bits` selects the grid (2..8).
[[nodiscard]] KvQuantized kv_quantize_bits(std::span<const float> x, unsigned bits);

// Dequantizes codes back to float.
[[nodiscard]] std::vector<float> kv_dequantize(std::span<const std::uint8_t> codes,
                                               KvQuantParams params);

// In-place variant writing into `out` (sized like codes).
void kv_dequantize_into(std::span<const std::uint8_t> codes, KvQuantParams params,
                        std::span<float> out);

// Packed-cache byte footprint for one token across the whole model:
// 2 (K and V) * layers * dim codes + 2 * layers * heads scale-zero packs.
[[nodiscard]] std::uint64_t kv8_bytes_per_token(std::uint64_t layers, std::uint64_t dim,
                                                std::uint64_t kv_heads);

}  // namespace efld::quant
