// AWQ-style activation-aware weight scaling.
//
// AWQ's core observation: a small fraction of weight channels matter far more
// than others, and their importance is visible in the *activation* magnitudes.
// Before group quantization, each input channel j is scaled by
// s_j = (mean |x_j|)^alpha (normalized), and the activations are divided by
// s_j at runtime — mathematically a no-op, but it shifts quantization error
// away from salient channels. `alpha` is chosen by grid search minimizing the
// output MSE on a calibration set, exactly as AutoAWQ does per layer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "quant/groupquant.hpp"

namespace efld::quant {

struct AwqConfig {
    GroupQuantConfig group{};
    unsigned grid_points = 20;  // alpha candidates in [0, 1)
    float eps = 1e-6f;          // floor for activation statistics
};

struct AwqResult {
    QuantizedLinear layer;            // quantized W * diag(s)
    std::vector<float> channel_scale; // s_j, to divide into activations
    float best_alpha = 0.0f;
    double best_mse = 0.0;            // output MSE at best_alpha
    double baseline_mse = 0.0;        // output MSE with no AWQ scaling (alpha=0)
};

// Per-input-channel mean absolute activation over a calibration batch
// laid out row-major [samples, cols].
[[nodiscard]] std::vector<float> activation_importance(std::span<const float> acts,
                                                       std::size_t samples,
                                                       std::size_t cols);

// Runs the alpha grid search and returns the scaled-and-quantized layer.
// `weights` is [rows, cols] row-major; `calib` is [samples, cols].
[[nodiscard]] AwqResult awq_quantize(std::span<const float> weights, std::size_t rows,
                                     std::size_t cols, std::span<const float> calib,
                                     std::size_t samples, const AwqConfig& cfg);

}  // namespace efld::quant
