// Bus-width aligned model-weight arrangement format (Fig. 4A).
//
// Everything the accelerator fetches must arrive as large sequential bursts.
// Scales and zero points are therefore interleaved *into* the weight stream
// rather than stored in side tables:
//
//   weight word = 128 x u4 codes  = exactly one quantization group
//   scale  word = 32 x fp16       = scales for the next 32 groups
//   zero   word = 128 x u4        = zero points for the next 128 groups
//
//   per 128-group chunk: [Z] [S0] [W x32] [S1] [W x32] [S2] [W x32] [S3] [W x32]
//   = 133 words for 16384 weights  (3.76 % stream overhead)
//
// The paper's §V.B text is internally inconsistent (64 weights per word vs.
// 128 dequantized lanes); we adopt the self-consistent 128-lane reading —
// see DESIGN.md §4. A partial final chunk still emits one zero word, then as
// many scale blocks as needed; the tail scale block may carry fewer than 32
// weight words.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitpack.hpp"
#include "quant/groupquant.hpp"

namespace efld::quant {

inline constexpr std::size_t kFormatGroupSize = kNibblesPerWord;       // 128
inline constexpr std::size_t kGroupsPerScaleWord = kHalfsPerWord;      // 32
inline constexpr std::size_t kGroupsPerZeroWord = kNibblesPerWord;     // 128
inline constexpr std::size_t kScaleBlocksPerChunk =
    kGroupsPerZeroWord / kGroupsPerScaleWord;                          // 4

enum class WordKind : std::uint8_t { kZero, kScale, kWeight };

// Deterministic stream schedule for `num_groups` groups — the demultiplexer
// in the MCU walks exactly this sequence.
[[nodiscard]] std::vector<WordKind> stream_schedule(std::size_t num_groups);

// Number of bus words the arrangement needs for `num_groups` groups.
[[nodiscard]] std::size_t stream_words(std::size_t num_groups);

// Fraction of the stream that is scale/zero overhead (vs. weight payload).
[[nodiscard]] double stream_overhead(std::size_t num_groups);

// Packs a quantized layer (group_size must be 128, bits must be 4).
[[nodiscard]] std::vector<Word512> pack_weight_stream(const QuantizedLinear& layer);

// Decodes a packed stream back into a layer (inverse of pack_weight_stream).
[[nodiscard]] QuantizedLinear unpack_weight_stream(std::span<const Word512> words,
                                                   std::size_t rows, std::size_t cols);

// One dequantization-ready group as it leaves the demultiplexer.
struct DecodedGroup {
    std::array<std::uint8_t, kFormatGroupSize> codes{};
    Fp16 scale;
    std::uint8_t zero = 0;
};

// Streaming decoder: feed bus words in arrival order; weight words pop out as
// decoded groups with their scale/zero attached. Models the MCU demux +
// scale/zero registers (only one zero word and one scale word are ever
// buffered on chip — the point of the format).
class WeightStreamDecoder {
public:
    explicit WeightStreamDecoder(std::size_t num_groups);

    // Consumes the next word; returns a group when the word was weight data.
    std::optional<DecodedGroup> consume(const Word512& word);

    [[nodiscard]] bool done() const noexcept { return groups_done_ == num_groups_; }
    [[nodiscard]] std::size_t groups_done() const noexcept { return groups_done_; }
    [[nodiscard]] WordKind expected_kind() const;

private:
    std::size_t num_groups_;
    std::size_t groups_done_ = 0;
    std::vector<WordKind> schedule_;
    std::size_t cursor_ = 0;
    Word512 zero_word_{};
    Word512 scale_word_{};
};

}  // namespace efld::quant
