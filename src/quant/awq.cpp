#include "quant/awq.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace efld::quant {

std::vector<float> activation_importance(std::span<const float> acts,
                                         std::size_t samples, std::size_t cols) {
    check(acts.size() == samples * cols, "activation_importance: size mismatch");
    check(samples > 0, "activation_importance: need at least one sample");
    std::vector<float> imp(cols, 0.0f);
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t j = 0; j < cols; ++j) {
            imp[j] += std::abs(acts[s * cols + j]);
        }
    }
    for (float& v : imp) v /= static_cast<float>(samples);
    return imp;
}

namespace {

// Output MSE of quantized-gemv vs float-gemv over the calibration batch.
double output_mse(const QuantizedLinear& q, std::span<const float> weights,
                  std::span<const float> calib, std::size_t samples,
                  std::span<const float> channel_scale) {
    const std::size_t rows = q.rows();
    const std::size_t cols = q.cols();
    const std::vector<float> wq = q.dequantize();
    double mse = 0.0;
    std::vector<float> xs(cols);
    for (std::size_t s = 0; s < samples; ++s) {
        const float* x = calib.data() + s * cols;
        for (std::size_t j = 0; j < cols; ++j) xs[j] = x[j] / channel_scale[j];
        for (std::size_t r = 0; r < rows; ++r) {
            double y_ref = 0.0, y_q = 0.0;
            const float* wrow = weights.data() + r * cols;
            const float* qrow = wq.data() + r * cols;
            for (std::size_t j = 0; j < cols; ++j) {
                y_ref += static_cast<double>(wrow[j]) * x[j];
                y_q += static_cast<double>(qrow[j]) * xs[j];
            }
            const double d = y_ref - y_q;
            mse += d * d;
        }
    }
    return mse / static_cast<double>(samples * rows);
}

}  // namespace

AwqResult awq_quantize(std::span<const float> weights, std::size_t rows,
                       std::size_t cols, std::span<const float> calib,
                       std::size_t samples, const AwqConfig& cfg) {
    check(weights.size() == rows * cols, "awq_quantize: weight size mismatch");
    check(calib.size() == samples * cols, "awq_quantize: calib size mismatch");
    check(cfg.grid_points >= 1, "awq_quantize: need at least one grid point");

    const std::vector<float> imp = activation_importance(calib, samples, cols);

    AwqResult best;
    std::vector<float> scaled(rows * cols);
    std::vector<float> s(cols);

    for (unsigned gi = 0; gi < cfg.grid_points; ++gi) {
        const float alpha =
            static_cast<float>(gi) / static_cast<float>(cfg.grid_points);

        // s_j = imp_j^alpha, normalized so the geometric mean is 1 (keeps the
        // overall weight magnitude unchanged, as in AutoAWQ).
        double log_sum = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
            s[j] = std::pow(std::max(imp[j], cfg.eps), alpha);
            log_sum += std::log(static_cast<double>(s[j]));
        }
        const float norm =
            static_cast<float>(std::exp(log_sum / static_cast<double>(cols)));
        for (std::size_t j = 0; j < cols; ++j) {
            s[j] = std::max(s[j] / norm, cfg.eps);
        }

        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t j = 0; j < cols; ++j) {
                scaled[r * cols + j] = weights[r * cols + j] * s[j];
            }
        }

        QuantizedLinear q = QuantizedLinear::quantize(scaled, rows, cols, cfg.group);
        const double mse = output_mse(q, weights, calib, samples, s);
        if (gi == 0) best.baseline_mse = mse;
        if (gi == 0 || mse < best.best_mse) {
            best.best_mse = mse;
            best.best_alpha = alpha;
            best.layer = std::move(q);
            best.channel_scale = s;
        }
    }
    return best;
}

}  // namespace efld::quant
