// KV-cache scale-zero packing FIFO (Fig. 4B).
//
// Scales and zero points of the KV cache are produced one pair at a time
// (per head, per layer, per K/V) during decoding. Writing each 32-bit pack to
// DDR individually would be a disastrously short transaction, so the SPU
// keeps one FIFO slot per (layer, head, K|V) stream. Each slot accumulates
// packs across 16 consecutive tokens into one 512-bit bus word; the word is
// flushed to DDR only when full — i.e. every 16 tokens — keeping all KV
// scalar traffic bus-width aligned.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitpack.hpp"
#include "quant/kvquant.hpp"

namespace efld::quant {

// 32-bit pack: fp16 scale | u8 zero | u8 pad (alignment dummy).
[[nodiscard]] std::uint32_t encode_scale_zero(KvQuantParams p) noexcept;
[[nodiscard]] KvQuantParams decode_scale_zero(std::uint32_t pack) noexcept;

inline constexpr std::size_t kPacksPerWord = kBusBits / 32;  // 16 tokens per flush

class ScaleZeroFifo {
public:
    // One slot per KV scalar stream: 2 (K and V) * layers * kv_heads.
    ScaleZeroFifo(std::size_t layers, std::size_t kv_heads);

    // Appends a pack for `token_index` to the slot for (layer, head, is_value).
    // Returns the filled 512-bit word when this append completes a 16-token
    // window (the caller sends it to DDR), nullopt otherwise.
    std::optional<Word512> append(std::size_t layer, std::size_t head, bool is_value,
                                  std::size_t token_index, KvQuantParams params);

    // Drains a partially filled slot (end of generation); invalid lanes stay 0.
    [[nodiscard]] std::optional<Word512> flush(std::size_t layer, std::size_t head,
                                               bool is_value);

    [[nodiscard]] std::size_t num_slots() const noexcept { return slots_.size(); }
    [[nodiscard]] std::size_t slot_fill(std::size_t layer, std::size_t head,
                                        bool is_value) const;

    // On-chip footprint in bytes (the URAM cost in Table I's SPU column).
    [[nodiscard]] std::uint64_t storage_bytes() const noexcept {
        return static_cast<std::uint64_t>(slots_.size()) * kBusBytes;
    }

    // Total words flushed so far (the Fig. 4 transaction count experiment).
    [[nodiscard]] std::uint64_t words_flushed() const noexcept { return words_flushed_; }

private:
    struct Slot {
        Word512 word{};
        std::size_t fill = 0;
    };

    [[nodiscard]] std::size_t index(std::size_t layer, std::size_t head,
                                    bool is_value) const;

    std::size_t layers_;
    std::size_t kv_heads_;
    std::vector<Slot> slots_;
    std::uint64_t words_flushed_ = 0;
};

}  // namespace efld::quant
