#include "quant/weight_format.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace efld::quant {

std::vector<WordKind> stream_schedule(std::size_t num_groups) {
    std::vector<WordKind> sched;
    sched.reserve(stream_words(num_groups));
    std::size_t g = 0;
    while (g < num_groups) {
        sched.push_back(WordKind::kZero);  // zeros for up to 128 groups
        const std::size_t chunk_groups = std::min(num_groups - g, kGroupsPerZeroWord);
        std::size_t done = 0;
        while (done < chunk_groups) {
            sched.push_back(WordKind::kScale);  // scales for up to 32 groups
            const std::size_t block = std::min(chunk_groups - done, kGroupsPerScaleWord);
            sched.insert(sched.end(), block, WordKind::kWeight);
            done += block;
        }
        g += chunk_groups;
    }
    return sched;
}

std::size_t stream_words(std::size_t num_groups) {
    const std::size_t zero_words = div_ceil(num_groups, kGroupsPerZeroWord);
    const std::size_t scale_words = div_ceil(num_groups, kGroupsPerScaleWord);
    return zero_words + scale_words + num_groups;
}

double stream_overhead(std::size_t num_groups) {
    if (num_groups == 0) return 0.0;
    const double total = static_cast<double>(stream_words(num_groups));
    return (total - static_cast<double>(num_groups)) / total;
}

std::vector<Word512> pack_weight_stream(const QuantizedLinear& layer) {
    check(layer.config().group_size == kFormatGroupSize,
          "pack_weight_stream: bus format requires group_size == 128");
    check(layer.config().bits == 4, "pack_weight_stream: bus format requires 4-bit codes");

    const std::size_t num_groups = layer.num_groups();
    std::vector<Word512> words;
    words.reserve(stream_words(num_groups));

    std::size_t g = 0;
    while (g < num_groups) {
        const std::size_t chunk_groups = std::min(num_groups - g, kGroupsPerZeroWord);

        Word512 zero_word{};
        for (std::size_t i = 0; i < chunk_groups; ++i) {
            zero_word.set_nibble(i, layer.zero(g + i));
        }
        words.push_back(zero_word);

        std::size_t done = 0;
        while (done < chunk_groups) {
            const std::size_t block = std::min(chunk_groups - done, kGroupsPerScaleWord);
            Word512 scale_word{};
            for (std::size_t i = 0; i < block; ++i) {
                scale_word.set_half(i, layer.scale(g + done + i));
            }
            words.push_back(scale_word);

            for (std::size_t i = 0; i < block; ++i) {
                const std::size_t group = g + done + i;
                Word512 w{};
                const auto codes = layer.codes().subspan(group * kFormatGroupSize,
                                                         kFormatGroupSize);
                for (std::size_t n = 0; n < kFormatGroupSize; ++n) {
                    w.set_nibble(n, codes[n]);
                }
                words.push_back(w);
            }
            done += block;
        }
        g += chunk_groups;
    }
    return words;
}

QuantizedLinear unpack_weight_stream(std::span<const Word512> words, std::size_t rows,
                                     std::size_t cols) {
    check(cols % kFormatGroupSize == 0, "unpack_weight_stream: cols not group aligned");
    const std::size_t num_groups = rows * (cols / kFormatGroupSize);
    check(words.size() == stream_words(num_groups),
          "unpack_weight_stream: word count mismatch");

    std::vector<std::uint8_t> codes(rows * cols);
    std::vector<Fp16> scales(num_groups);
    std::vector<std::uint8_t> zeros(num_groups);

    WeightStreamDecoder dec(num_groups);
    std::size_t g = 0;
    for (const auto& w : words) {
        if (auto grp = dec.consume(w)) {
            std::copy(grp->codes.begin(), grp->codes.end(),
                      codes.begin() + static_cast<std::ptrdiff_t>(g * kFormatGroupSize));
            scales[g] = grp->scale;
            zeros[g] = grp->zero;
            ++g;
        }
    }
    check(g == num_groups, "unpack_weight_stream: stream ended early");

    GroupQuantConfig cfg;
    cfg.group_size = kFormatGroupSize;
    cfg.bits = 4;
    return QuantizedLinear::from_parts(std::move(codes), std::move(scales),
                                       std::move(zeros), rows, cols, cfg);
}

WeightStreamDecoder::WeightStreamDecoder(std::size_t num_groups)
    : num_groups_(num_groups), schedule_(stream_schedule(num_groups)) {}

WordKind WeightStreamDecoder::expected_kind() const {
    check(cursor_ < schedule_.size(), "WeightStreamDecoder: stream already complete");
    return schedule_[cursor_];
}

std::optional<DecodedGroup> WeightStreamDecoder::consume(const Word512& word) {
    const WordKind kind = expected_kind();
    ++cursor_;
    switch (kind) {
        case WordKind::kZero:
            zero_word_ = word;
            return std::nullopt;
        case WordKind::kScale:
            scale_word_ = word;
            return std::nullopt;
        case WordKind::kWeight: {
            DecodedGroup grp;
            // Group offsets within the current chunk / scale block derive from
            // how many groups this chunk has already produced.
            const std::size_t chunk_off = groups_done_ % kGroupsPerZeroWord;
            const std::size_t block_off = chunk_off % kGroupsPerScaleWord;
            for (std::size_t n = 0; n < kFormatGroupSize; ++n) {
                grp.codes[n] = word.nibble(n);
            }
            grp.scale = scale_word_.half(block_off);
            grp.zero = zero_word_.nibble(chunk_off);
            ++groups_done_;
            return grp;
        }
    }
    return std::nullopt;
}

}  // namespace efld::quant
