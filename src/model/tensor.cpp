#include "model/tensor.hpp"

#include "common/check.hpp"

namespace efld::model {

void gemv(const Matrix& w, std::span<const float> x, std::span<float> y) {
    check(x.size() == w.cols(), "gemv: x size mismatch");
    check(y.size() == w.rows(), "gemv: y size mismatch");
    for (std::size_t r = 0; r < w.rows(); ++r) {
        const std::span<const float> row = w.row(r);
        float acc = 0.0f;
        for (std::size_t c = 0; c < row.size(); ++c) acc += row[c] * x[c];
        y[r] = acc;
    }
}

}  // namespace efld::model
