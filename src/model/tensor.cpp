#include "model/tensor.hpp"

#include "common/check.hpp"

namespace efld::model {

void gemv_rows(const Matrix& w, std::span<const float> x, std::span<float> y,
               std::size_t row_begin, std::size_t row_end) {
    for (std::size_t r = row_begin; r < row_end; ++r) {
        const std::span<const float> row = w.row(r);
        float acc = 0.0f;
        for (std::size_t c = 0; c < row.size(); ++c) acc += row[c] * x[c];
        y[r] = acc;
    }
}

void gemv(const Matrix& w, std::span<const float> x, std::span<float> y) {
    check(x.size() == w.cols(), "gemv: x size mismatch");
    check(y.size() == w.rows(), "gemv: y size mismatch");
    gemv_rows(w, x, y, 0, w.rows());
}

}  // namespace efld::model
