// Float32 reference kernels for every operation the SPU implements.
//
// These are the golden functions the hardware submodules (accel/spu_*.cpp)
// are validated against: RMSNorm, rotary position embedding (rotate-half
// convention, as in LLaMA), numerically stable softmax, SiLU, and attention.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace efld::model {

// RMSNorm: out_i = x_i / rms(x) * weight_i,  rms = sqrt(mean(x^2) + eps).
void rmsnorm(std::span<const float> x, std::span<const float> weight, float eps,
             std::span<float> out);

// Rotary position embedding over one head vector (rotate-half pairing):
// for i in [0, d/2): (x_i, x_{i+d/2}) rotated by theta_i = pos * base^(-2i/d).
// Frequencies are generated incrementally (freq_{i+1} = freq_i * base^(-2/d),
// one pow per call instead of one per element); rope_angles below shares the
// same recurrence so a cached table is bit-for-bit identical to this kernel.
void rope_rotate(std::span<float> head_vec, std::size_t pos, float theta_base);

// Writes cos/sin of pos * base^(-2i/d) for i in [0, d/2) — one table row.
void rope_angles(std::size_t head_dim, std::size_t pos, float theta_base,
                 std::span<float> cos_out, std::span<float> sin_out);

// rope_rotate with the trigonometry precomputed: cos_row/sin_row must hold
// the head_dim/2 values rope_angles produced for this position.
void rope_rotate_cached(std::span<float> head_vec, std::span<const float> cos_row,
                        std::span<const float> sin_row);

// Per-position RoPE trigonometry for a whole context window, built once at
// engine construction so decode never touches pow/sin/cos.
class RopeTable {
public:
    RopeTable() = default;
    RopeTable(std::size_t head_dim, std::size_t max_pos, float theta_base);

    [[nodiscard]] std::span<const float> cos_row(std::size_t pos) const noexcept {
        return std::span<const float>(cos_).subspan(pos * half_, half_);
    }
    [[nodiscard]] std::span<const float> sin_row(std::size_t pos) const noexcept {
        return std::span<const float>(sin_).subspan(pos * half_, half_);
    }
    [[nodiscard]] std::size_t max_pos() const noexcept { return max_pos_; }
    [[nodiscard]] bool empty() const noexcept { return max_pos_ == 0; }

private:
    std::size_t half_ = 0;
    std::size_t max_pos_ = 0;
    std::vector<float> cos_;
    std::vector<float> sin_;
};

// Numerically stable softmax (three-pass: max, exp-sum, normalize).
void softmax(std::span<const float> x, std::span<float> out);

// SiLU applied elementwise: x * sigmoid(x).
void silu_inplace(std::span<float> x);

// Gated MLP activation: out_i = silu(gate_i) * up_i.
void silu_gate(std::span<const float> gate, std::span<const float> up,
               std::span<float> out);

// Single-head attention over a contiguous KV history.
// q: [head_dim]; keys/values: ctx rows of [head_dim]; out: [head_dim].
void attention_head(std::span<const float> q, std::span<const float> keys,
                    std::span<const float> values, std::size_t ctx,
                    std::size_t head_dim, std::span<float> out);

// Allocation-free variant: `scores` is caller-owned scratch of at least `ctx`
// floats (distinct per head when heads run in parallel).
void attention_head(std::span<const float> q, std::span<const float> keys,
                    std::span<const float> values, std::size_t ctx,
                    std::size_t head_dim, std::span<float> out,
                    std::span<float> scores);

}  // namespace efld::model
