// Float32 reference kernels for every operation the SPU implements.
//
// These are the golden functions the hardware submodules (accel/spu_*.cpp)
// are validated against: RMSNorm, rotary position embedding (rotate-half
// convention, as in LLaMA), numerically stable softmax, SiLU, and attention.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace efld::model {

// RMSNorm: out_i = x_i / rms(x) * weight_i,  rms = sqrt(mean(x^2) + eps).
void rmsnorm(std::span<const float> x, std::span<const float> weight, float eps,
             std::span<float> out);

// Rotary position embedding over one head vector (rotate-half pairing):
// for i in [0, d/2): (x_i, x_{i+d/2}) rotated by theta_i = pos * base^(-2i/d).
void rope_rotate(std::span<float> head_vec, std::size_t pos, float theta_base);

// Numerically stable softmax (three-pass: max, exp-sum, normalize).
void softmax(std::span<const float> x, std::span<float> out);

// SiLU applied elementwise: x * sigmoid(x).
void silu_inplace(std::span<float> x);

// Gated MLP activation: out_i = silu(gate_i) * up_i.
void silu_gate(std::span<const float> gate, std::span<const float> up,
               std::span<float> out);

// Single-head attention over a contiguous KV history.
// q: [head_dim]; keys/values: ctx rows of [head_dim]; out: [head_dim].
void attention_head(std::span<const float> q, std::span<const float> keys,
                    std::span<const float> values, std::size_t ctx,
                    std::size_t head_dim, std::span<float> out);

}  // namespace efld::model
