#include "model/weights.hpp"

#include "common/rng.hpp"

namespace efld::model {

namespace {

void fill_gaussian(std::span<float> data, Xoshiro256& rng, double stddev) {
    for (float& v : data) v = static_cast<float>(rng.gaussian(0.0, stddev));
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
    Matrix m(rows, cols);
    // Xavier-ish scale keeps activations O(1) through the stack.
    fill_gaussian(m.flat(), rng, 1.0 / std::sqrt(static_cast<double>(cols)));
    return m;
}

Vector random_norm_weight(std::size_t n, Xoshiro256& rng) {
    Vector v(n);
    for (float& x : v) x = static_cast<float>(1.0 + 0.02 * rng.gaussian());
    return v;
}

}  // namespace

ModelWeights ModelWeights::synthetic(const ModelConfig& cfg, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    ModelWeights w;
    w.config = cfg;
    w.embedding = random_matrix(cfg.vocab_size, cfg.dim, rng);
    w.layers.resize(cfg.n_layers);
    for (auto& layer : w.layers) {
        layer.wq = random_matrix(cfg.dim, cfg.dim, rng);
        layer.wk = random_matrix(cfg.kv_dim(), cfg.dim, rng);
        layer.wv = random_matrix(cfg.kv_dim(), cfg.dim, rng);
        layer.wo = random_matrix(cfg.dim, cfg.dim, rng);
        layer.w_gate = random_matrix(cfg.hidden_dim, cfg.dim, rng);
        layer.w_up = random_matrix(cfg.hidden_dim, cfg.dim, rng);
        layer.w_down = random_matrix(cfg.dim, cfg.hidden_dim, rng);
        layer.attn_norm = random_norm_weight(cfg.dim, rng);
        layer.mlp_norm = random_norm_weight(cfg.dim, rng);
    }
    w.final_norm = random_norm_weight(cfg.dim, rng);
    w.lm_head = random_matrix(cfg.vocab_size, cfg.dim, rng);
    return w;
}

QuantizedModelWeights QuantizedModelWeights::quantize(const ModelWeights& w,
                                                      const quant::GroupQuantConfig& qc) {
    using quant::QuantizedLinear;
    QuantizedModelWeights q;
    q.config = w.config;
    q.quant_config = qc;
    q.embedding = w.embedding;
    q.final_norm = w.final_norm;
    q.layers.resize(w.layers.size());
    for (std::size_t i = 0; i < w.layers.size(); ++i) {
        const LayerWeights& src = w.layers[i];
        QuantizedLayerWeights& dst = q.layers[i];
        dst.wq = QuantizedLinear::quantize(src.wq.flat(), src.wq.rows(), src.wq.cols(), qc);
        dst.wk = QuantizedLinear::quantize(src.wk.flat(), src.wk.rows(), src.wk.cols(), qc);
        dst.wv = QuantizedLinear::quantize(src.wv.flat(), src.wv.rows(), src.wv.cols(), qc);
        dst.wo = QuantizedLinear::quantize(src.wo.flat(), src.wo.rows(), src.wo.cols(), qc);
        dst.w_gate = QuantizedLinear::quantize(src.w_gate.flat(), src.w_gate.rows(),
                                               src.w_gate.cols(), qc);
        dst.w_up = QuantizedLinear::quantize(src.w_up.flat(), src.w_up.rows(),
                                             src.w_up.cols(), qc);
        dst.w_down = QuantizedLinear::quantize(src.w_down.flat(), src.w_down.rows(),
                                               src.w_down.cols(), qc);
        dst.attn_norm = src.attn_norm;
        dst.mlp_norm = src.mlp_norm;
    }
    q.lm_head = quant::QuantizedLinear::quantize(w.lm_head.flat(), w.lm_head.rows(),
                                                 w.lm_head.cols(), qc);
    return q;
}

}  // namespace efld::model
