#include "model/reference_engine.hpp"

#include "common/check.hpp"
#include "model/kernels.hpp"
#include "model/tensor.hpp"

namespace efld::model {

namespace {
enum Proj { kWq = 0, kWk, kWv, kWo, kWGate, kWUp, kWDown, kLmHead };
}

ReferenceEngine::ReferenceEngine(const ModelWeights& weights, bool use_kv8,
                                 unsigned kv_bits)
    : cfg_(weights.config),
      fw_(&weights),
      use_kv8_(use_kv8),
      kv_float_(cfg_),
      kv_quant_(cfg_, kv_bits) {
    xb_.resize(cfg_.dim);
    q_.resize(cfg_.dim);
    k_.resize(cfg_.kv_dim());
    v_.resize(cfg_.kv_dim());
    att_out_.resize(cfg_.dim);
    gate_.resize(cfg_.hidden_dim);
    up_.resize(cfg_.hidden_dim);
    hidden_.resize(cfg_.hidden_dim);
    logits_.resize(cfg_.vocab_size);
}

ReferenceEngine::ReferenceEngine(const QuantizedModelWeights& weights, bool use_kv8,
                                 unsigned kv_bits)
    : cfg_(weights.config),
      qw_(&weights),
      use_kv8_(use_kv8),
      kv_float_(cfg_),
      kv_quant_(cfg_, kv_bits) {
    xb_.resize(cfg_.dim);
    q_.resize(cfg_.dim);
    k_.resize(cfg_.kv_dim());
    v_.resize(cfg_.kv_dim());
    att_out_.resize(cfg_.dim);
    gate_.resize(cfg_.hidden_dim);
    up_.resize(cfg_.hidden_dim);
    hidden_.resize(cfg_.hidden_dim);
    logits_.resize(cfg_.vocab_size);
}

void ReferenceEngine::reset() {
    kv_float_.reset();
    kv_quant_.reset();
    pos_ = 0;
}

void ReferenceEngine::proj(std::size_t layer, int which, std::span<const float> x,
                           std::span<float> y) const {
    if (fw_ != nullptr) {
        const LayerWeights* lw = which == kLmHead ? nullptr : &fw_->layers[layer];
        switch (which) {
            case kWq: gemv(lw->wq, x, y); return;
            case kWk: gemv(lw->wk, x, y); return;
            case kWv: gemv(lw->wv, x, y); return;
            case kWo: gemv(lw->wo, x, y); return;
            case kWGate: gemv(lw->w_gate, x, y); return;
            case kWUp: gemv(lw->w_up, x, y); return;
            case kWDown: gemv(lw->w_down, x, y); return;
            case kLmHead: gemv(fw_->lm_head, x, y); return;
        }
    } else {
        const QuantizedLayerWeights* lw = which == kLmHead ? nullptr : &qw_->layers[layer];
        const quant::QuantizedLinear* m = nullptr;
        switch (which) {
            case kWq: m = &lw->wq; break;
            case kWk: m = &lw->wk; break;
            case kWv: m = &lw->wv; break;
            case kWo: m = &lw->wo; break;
            case kWGate: m = &lw->w_gate; break;
            case kWUp: m = &lw->w_up; break;
            case kWDown: m = &lw->w_down; break;
            case kLmHead: m = &qw_->lm_head; break;
        }
        const std::vector<float> out = m->gemv_reference(x);
        std::copy(out.begin(), out.end(), y.begin());
    }
}

std::span<const float> ReferenceEngine::attn_norm(std::size_t layer) const {
    return fw_ != nullptr ? std::span<const float>(fw_->layers[layer].attn_norm)
                          : std::span<const float>(qw_->layers[layer].attn_norm);
}

std::span<const float> ReferenceEngine::mlp_norm(std::size_t layer) const {
    return fw_ != nullptr ? std::span<const float>(fw_->layers[layer].mlp_norm)
                          : std::span<const float>(qw_->layers[layer].mlp_norm);
}

void ReferenceEngine::attention_block(std::size_t layer, std::span<float> x) {
    rmsnorm(x, attn_norm(layer), cfg_.rms_eps, xb_);

    proj(layer, kWq, xb_, q_);
    proj(layer, kWk, xb_, k_);
    proj(layer, kWv, xb_, v_);

    // RoPE on every query head and key head at the current position.
    const std::size_t hd = cfg_.head_dim();
    for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
        rope_rotate(std::span<float>(q_).subspan(h * hd, hd), pos_, cfg_.rope_theta);
    }
    for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
        rope_rotate(std::span<float>(k_).subspan(h * hd, hd), pos_, cfg_.rope_theta);
    }

    if (use_kv8_) {
        kv_quant_.append(layer, k_, v_);
    } else {
        kv_float_.append(layer, k_, v_);
    }
    const std::size_t ctx = pos_ + 1;

    const std::size_t heads_per_kv = cfg_.n_heads / cfg_.n_kv_heads;
    for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
        const std::size_t kvh = h / heads_per_kv;
        const std::vector<float> keys = use_kv8_ ? kv_quant_.keys_for_head(layer, kvh, ctx)
                                                 : kv_float_.keys_for_head(layer, kvh, ctx);
        const std::vector<float> vals = use_kv8_
                                            ? kv_quant_.values_for_head(layer, kvh, ctx)
                                            : kv_float_.values_for_head(layer, kvh, ctx);
        attention_head(std::span<const float>(q_).subspan(h * hd, hd), keys, vals, ctx, hd,
                       std::span<float>(att_out_).subspan(h * hd, hd));
    }

    // Output projection + residual.
    proj(layer, kWo, att_out_, xb_);
    for (std::size_t i = 0; i < cfg_.dim; ++i) x[i] += xb_[i];
}

void ReferenceEngine::mlp_block(std::size_t layer, std::span<float> x) {
    rmsnorm(x, mlp_norm(layer), cfg_.rms_eps, xb_);
    proj(layer, kWGate, xb_, gate_);
    proj(layer, kWUp, xb_, up_);
    silu_gate(gate_, up_, hidden_);
    std::vector<float> down(cfg_.dim);
    proj(layer, kWDown, hidden_, down);
    for (std::size_t i = 0; i < cfg_.dim; ++i) x[i] += down[i];
}

std::vector<float> ReferenceEngine::forward(std::int32_t token) {
    check(token >= 0 && static_cast<std::uint64_t>(token) < cfg_.vocab_size,
          "ReferenceEngine: token out of range");
    check(pos_ < cfg_.max_seq_len, "ReferenceEngine: context window exhausted");

    // Token embedding lookup.
    std::vector<float> x(cfg_.dim);
    const Matrix& emb = fw_ != nullptr ? fw_->embedding : qw_->embedding;
    const auto row = emb.row(static_cast<std::size_t>(token));
    std::copy(row.begin(), row.end(), x.begin());

    for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
        attention_block(layer, x);
        mlp_block(layer, x);
    }
    ++pos_;

    rmsnorm(x, fw_ != nullptr ? std::span<const float>(fw_->final_norm)
                              : std::span<const float>(qw_->final_norm),
            cfg_.rms_eps, xb_);
    proj(0, kLmHead, xb_, logits_);
    return logits_;
}

std::vector<float> ReferenceEngine::prefill(std::span<const std::int32_t> tokens) {
    check(!tokens.empty(), "ReferenceEngine: empty prompt");
    std::vector<float> logits;
    for (const std::int32_t t : tokens) logits = forward(t);
    return logits;
}

}  // namespace efld::model
