#include "model/reference_engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "model/tensor.hpp"

namespace efld::model {

namespace {
enum Proj { kWq = 0, kWk, kWv, kWo, kWGate, kWUp, kWDown, kLmHead };
}

ReferenceEngine::ReferenceEngine(const ModelWeights& weights, EngineOptions opts)
    : cfg_(weights.config),
      opts_(opts),
      fw_(&weights),
      kv_float_(cfg_),
      kv_quant_(cfg_, opts.kv_bits) {
    init_scratch();
}

ReferenceEngine::ReferenceEngine(const QuantizedModelWeights& weights, EngineOptions opts)
    : cfg_(weights.config),
      opts_(opts),
      qw_(&weights),
      kv_float_(cfg_),
      kv_quant_(cfg_, opts.kv_bits) {
    init_scratch();
}

ReferenceEngine::ReferenceEngine(const ModelWeights& weights, bool use_kv8,
                                 unsigned kv_bits)
    : ReferenceEngine(weights,
                      EngineOptions{.use_kv8 = use_kv8, .kv_bits = kv_bits}) {}

ReferenceEngine::ReferenceEngine(const QuantizedModelWeights& weights, bool use_kv8,
                                 unsigned kv_bits)
    : ReferenceEngine(weights,
                      EngineOptions{.use_kv8 = use_kv8, .kv_bits = kv_bits}) {}

void ReferenceEngine::init_scratch() {
    if (opts_.threads > 1) pool_ = std::make_unique<ThreadPool>(opts_.threads);
    rope_ = RopeTable(cfg_.head_dim(), cfg_.max_seq_len, cfg_.rope_theta);

    x_.resize(cfg_.dim);
    xb_.resize(cfg_.dim);
    q_.resize(cfg_.dim);
    k_.resize(cfg_.kv_dim());
    v_.resize(cfg_.kv_dim());
    att_out_.resize(cfg_.dim);
    gate_.resize(cfg_.hidden_dim);
    up_.resize(cfg_.hidden_dim);
    hidden_.resize(cfg_.hidden_dim);
    down_.resize(cfg_.dim);
    logits_.resize(cfg_.vocab_size);
    scores_.resize(cfg_.n_heads * cfg_.max_seq_len);
    if (opts_.use_kv8) {
        kv_deq_k_.resize(cfg_.n_kv_heads * cfg_.max_seq_len * cfg_.head_dim());
        kv_deq_v_.resize(cfg_.n_kv_heads * cfg_.max_seq_len * cfg_.head_dim());
    }
}

void ReferenceEngine::reset() {
    kv_float_.reset();
    kv_quant_.reset();
    pos_ = 0;
}

void ReferenceEngine::proj(std::size_t layer, int which, std::span<const float> x,
                           std::span<float> y) {
    if (fw_ != nullptr) {
        const LayerWeights* lw = which == kLmHead ? nullptr : &fw_->layers[layer];
        const Matrix* m = nullptr;
        switch (which) {
            case kWq: m = &lw->wq; break;
            case kWk: m = &lw->wk; break;
            case kWv: m = &lw->wv; break;
            case kWo: m = &lw->wo; break;
            case kWGate: m = &lw->w_gate; break;
            case kWUp: m = &lw->w_up; break;
            case kWDown: m = &lw->w_down; break;
            case kLmHead: m = &fw_->lm_head; break;
        }
        if (ThreadPool* p = pool(); p != nullptr) {
            p->parallel_for(m->rows(), [&](std::size_t b, std::size_t e) {
                gemv_rows(*m, x, y, b, e);
            });
        } else {
            gemv(*m, x, y);
        }
    } else {
        const QuantizedLayerWeights* lw = which == kLmHead ? nullptr : &qw_->layers[layer];
        const quant::QuantizedLinear* m = nullptr;
        switch (which) {
            case kWq: m = &lw->wq; break;
            case kWk: m = &lw->wk; break;
            case kWv: m = &lw->wv; break;
            case kWo: m = &lw->wo; break;
            case kWGate: m = &lw->w_gate; break;
            case kWUp: m = &lw->w_up; break;
            case kWDown: m = &lw->w_down; break;
            case kLmHead: m = &qw_->lm_head; break;
        }
        if (opts_.seed_baseline) {
            const std::vector<float> out = m->gemv_seed_baseline(x);
            std::copy(out.begin(), out.end(), y.begin());
        } else {
            m->gemv(x, y, pool());
        }
    }
}

std::span<const float> ReferenceEngine::attn_norm(std::size_t layer) const {
    return fw_ != nullptr ? std::span<const float>(fw_->layers[layer].attn_norm)
                          : std::span<const float>(qw_->layers[layer].attn_norm);
}

std::span<const float> ReferenceEngine::mlp_norm(std::size_t layer) const {
    return fw_ != nullptr ? std::span<const float>(fw_->layers[layer].mlp_norm)
                          : std::span<const float>(qw_->layers[layer].mlp_norm);
}

void ReferenceEngine::attention_block(std::size_t layer, std::span<float> x) {
    rmsnorm(x, attn_norm(layer), cfg_.rms_eps, xb_);

    proj(layer, kWq, xb_, q_);
    proj(layer, kWk, xb_, k_);
    proj(layer, kWv, xb_, v_);

    // RoPE on every query head and key head at the current position, from the
    // table built at construction (no pow/sin/cos on the decode path). The
    // seed baseline recomputes the trigonometry per head per token.
    const std::size_t hd = cfg_.head_dim();
    if (opts_.seed_baseline) {
        for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
            rope_rotate(std::span<float>(q_).subspan(h * hd, hd), pos_, cfg_.rope_theta);
        }
        for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
            rope_rotate(std::span<float>(k_).subspan(h * hd, hd), pos_, cfg_.rope_theta);
        }
    } else {
        const std::span<const float> cos_row = rope_.cos_row(pos_);
        const std::span<const float> sin_row = rope_.sin_row(pos_);
        for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
            rope_rotate_cached(std::span<float>(q_).subspan(h * hd, hd), cos_row, sin_row);
        }
        for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
            rope_rotate_cached(std::span<float>(k_).subspan(h * hd, hd), cos_row, sin_row);
        }
    }

    if (opts_.use_kv8) {
        kv_quant_.append(layer, k_, v_);
    } else {
        kv_float_.append(layer, k_, v_);
    }
    const std::size_t ctx = pos_ + 1;

    if (opts_.seed_baseline) {
        // Seed loop: gather an owning per-query-head KV copy and allocate
        // scores inside attention_head, exactly like the pre-fast-path code.
        const std::size_t heads_per_kv = cfg_.n_heads / cfg_.n_kv_heads;
        for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
            const std::size_t kvh = h / heads_per_kv;
            const std::vector<float> keys =
                opts_.use_kv8 ? kv_quant_.keys_for_head(layer, kvh, ctx)
                              : kv_float_.keys_for_head(layer, kvh, ctx);
            const std::vector<float> vals =
                opts_.use_kv8 ? kv_quant_.values_for_head(layer, kvh, ctx)
                              : kv_float_.values_for_head(layer, kvh, ctx);
            attention_head(std::span<const float>(q_).subspan(h * hd, hd), keys, vals,
                           ctx, hd, std::span<float>(att_out_).subspan(h * hd, hd));
        }
        proj(layer, kWo, att_out_, xb_);
        for (std::size_t i = 0; i < cfg_.dim; ++i) x[i] += xb_[i];
        return;
    }

    // One task per KV head: its query-head cluster shares the same history,
    // so a quantized cache is dequantized once per cluster (not once per
    // query head), and parallel tasks touch disjoint scratch slices.
    const std::size_t heads_per_kv = cfg_.n_heads / cfg_.n_kv_heads;
    const std::size_t slab = cfg_.max_seq_len * hd;
    auto kv_head_task = [&](std::size_t kvh) {
        std::span<const float> keys, vals;
        if (opts_.use_kv8) {
            keys = kv_quant_.dequant_keys_into(
                layer, kvh, ctx, std::span<float>(kv_deq_k_).subspan(kvh * slab, slab));
            vals = kv_quant_.dequant_values_into(
                layer, kvh, ctx, std::span<float>(kv_deq_v_).subspan(kvh * slab, slab));
        } else {
            keys = kv_float_.keys_span(layer, kvh, ctx);
            vals = kv_float_.values_span(layer, kvh, ctx);
        }
        for (std::size_t h = kvh * heads_per_kv; h < (kvh + 1) * heads_per_kv; ++h) {
            attention_head(std::span<const float>(q_).subspan(h * hd, hd), keys, vals,
                           ctx, hd, std::span<float>(att_out_).subspan(h * hd, hd),
                           std::span<float>(scores_).subspan(h * cfg_.max_seq_len,
                                                             cfg_.max_seq_len));
        }
    };
    if (ThreadPool* p = pool(); p != nullptr) {
        p->parallel_for(cfg_.n_kv_heads, [&](std::size_t b, std::size_t e) {
            for (std::size_t kvh = b; kvh < e; ++kvh) kv_head_task(kvh);
        });
    } else {
        for (std::size_t kvh = 0; kvh < cfg_.n_kv_heads; ++kvh) kv_head_task(kvh);
    }

    // Output projection + residual.
    proj(layer, kWo, att_out_, xb_);
    for (std::size_t i = 0; i < cfg_.dim; ++i) x[i] += xb_[i];
}

void ReferenceEngine::mlp_block(std::size_t layer, std::span<float> x) {
    rmsnorm(x, mlp_norm(layer), cfg_.rms_eps, xb_);
    proj(layer, kWGate, xb_, gate_);
    proj(layer, kWUp, xb_, up_);
    silu_gate(gate_, up_, hidden_);
    proj(layer, kWDown, hidden_, down_);
    for (std::size_t i = 0; i < cfg_.dim; ++i) x[i] += down_[i];
}

std::span<const float> ReferenceEngine::decode(std::int32_t token) {
    check(token >= 0 && static_cast<std::uint64_t>(token) < cfg_.vocab_size,
          "ReferenceEngine: token out of range");
    check(pos_ < cfg_.max_seq_len, "ReferenceEngine: context window exhausted");

    // Token embedding lookup.
    const Matrix& emb = fw_ != nullptr ? fw_->embedding : qw_->embedding;
    const auto row = emb.row(static_cast<std::size_t>(token));
    std::copy(row.begin(), row.end(), x_.begin());

    for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
        attention_block(layer, x_);
        mlp_block(layer, x_);
    }
    ++pos_;

    rmsnorm(x_, fw_ != nullptr ? std::span<const float>(fw_->final_norm)
                               : std::span<const float>(qw_->final_norm),
            cfg_.rms_eps, xb_);
    proj(0, kLmHead, xb_, logits_);
    return logits_;
}

std::vector<float> ReferenceEngine::forward(std::int32_t token) {
    const std::span<const float> logits = decode(token);
    return std::vector<float>(logits.begin(), logits.end());
}

std::vector<float> ReferenceEngine::prefill(std::span<const std::int32_t> tokens) {
    check(!tokens.empty(), "ReferenceEngine: empty prompt");
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) (void)decode(tokens[i]);
    return forward(tokens.back());
}

}  // namespace efld::model
