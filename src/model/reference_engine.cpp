#include "model/reference_engine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/check.hpp"
#include "model/tensor.hpp"
#include "obs/profiler.hpp"

namespace efld::model {

namespace {
enum Proj { kWq = 0, kWk, kWv, kWo, kWGate, kWUp, kWDown, kLmHead };

const quant::QuantizedLinear& quant_proj(const QuantizedModelWeights& qw,
                                         std::size_t layer, int which) {
    if (which == kLmHead) return qw.lm_head;
    const QuantizedLayerWeights& lw = qw.layers[layer];
    switch (which) {
        case kWq: return lw.wq;
        case kWk: return lw.wk;
        case kWv: return lw.wv;
        case kWo: return lw.wo;
        case kWGate: return lw.w_gate;
        case kWUp: return lw.w_up;
        default: break;
    }
    return lw.w_down;
}
}  // namespace

ReferenceEngine::ReferenceEngine(const ModelWeights& weights, EngineOptions opts)
    : cfg_(weights.config), opts_(opts), fw_(&weights) {
    init_scratch();
}

ReferenceEngine::ReferenceEngine(const QuantizedModelWeights& weights, EngineOptions opts)
    : cfg_(weights.config), opts_(opts), qw_(&weights) {
    init_scratch();
}

ReferenceEngine::ReferenceEngine(const ModelWeights& weights, bool use_kv8,
                                 unsigned kv_bits)
    : ReferenceEngine(weights,
                      EngineOptions{.use_kv8 = use_kv8, .kv_bits = kv_bits}) {}

ReferenceEngine::ReferenceEngine(const QuantizedModelWeights& weights, bool use_kv8,
                                 unsigned kv_bits)
    : ReferenceEngine(weights,
                      EngineOptions{.use_kv8 = use_kv8, .kv_bits = kv_bits}) {}

void validate(const EngineOptions& opts) {
    if (opts.max_batch == 0) {
        throw std::invalid_argument("EngineOptions: max_batch must be >= 1");
    }
    if (opts.seed_baseline &&
        (opts.threads != 1 || opts.max_batch != 1 || opts.kv_page_tokens != 0)) {
        // The seed baseline reproduces the strictly sequential pre-fast-path
        // loop; a worker pool, batch slots, or a paged cache would silently
        // measure something that never existed.
        throw std::invalid_argument(
            "EngineOptions: seed_baseline requires threads == 1, max_batch == 1, "
            "and a contiguous KV cache");
    }
    if (opts.kv_pool_pages > 0 && opts.kv_page_tokens == 0) {
        throw std::invalid_argument(
            "EngineOptions: kv_pool_pages needs kv_page_tokens > 0 (a pool of "
            "pages is meaningless for contiguous caches)");
    }
    if (opts.prefix_sharing && opts.kv_page_tokens == 0) {
        throw std::invalid_argument(
            "EngineOptions: prefix_sharing needs kv_page_tokens > 0 (sharing "
            "is page-granular)");
    }
    if (opts.threads > 1) {
        // Determinism is thread-count independent, so modest oversubscription
        // (thread-schedule determinism tests) is fine — but a private pool
        // far wider than the machine is almost certainly a garbage value
        // (e.g. a byte count). Borrow the global pool (0) for process-wide
        // sizing.
        const std::size_t cap = std::max<std::size_t>(
            4, 4 * static_cast<std::size_t>(std::thread::hardware_concurrency()));
        if (opts.threads > cap) {
            throw std::invalid_argument(
                "EngineOptions: private pool of " + std::to_string(opts.threads) +
                " threads is inconsistent with this machine (cap " +
                std::to_string(cap) + "); use threads = 0 to borrow the global pool");
        }
    }
}

void ReferenceEngine::init_scratch() {
    validate(opts_);
    if (opts_.threads > 1) pool_ = std::make_unique<ThreadPool>(opts_.threads);
    rope_ = RopeTable(cfg_.head_dim(), cfg_.max_seq_len, cfg_.rope_theta);

    // Only the cache variant the options select is constructed: a full float
    // KV reservation per slot is exactly the kind of dead capacity the
    // batch dimension would multiply.
    const std::size_t mb = opts_.max_batch;
    if (paged()) {
        kvpool::KvPoolConfig pc;
        pc.page_tokens = opts_.kv_page_tokens;
        pc.n_pages = opts_.kv_pool_pages > 0
                         ? opts_.kv_pool_pages
                         : mb * ((cfg_.max_seq_len + pc.page_tokens - 1) /
                                 pc.page_tokens);
        if (opts_.use_kv8) {
            paged_quant_ =
                std::make_unique<kvpool::PagedQuantizedKvArena>(cfg_, pc, opts_.kv_bits);
            for (std::size_t s = 0; s < mb; ++s) (void)paged_quant_->create_sequence();
        } else {
            paged_float_ = std::make_unique<kvpool::PagedKvArena>(cfg_, pc);
            for (std::size_t s = 0; s < mb; ++s) (void)paged_float_->create_sequence();
        }
    } else if (opts_.use_kv8) {
        kv_quant_.reserve(mb);
        for (std::size_t s = 0; s < mb; ++s) kv_quant_.emplace_back(cfg_, opts_.kv_bits);
    } else {
        kv_float_.reserve(mb);
        for (std::size_t s = 0; s < mb; ++s) kv_float_.emplace_back(cfg_);
    }
    pos_.assign(mb, 0);
    slots_ = engine::SlotLedger(mb);

    x_.resize(mb * cfg_.dim);
    xb_.resize(mb * cfg_.dim);
    q_.resize(mb * cfg_.dim);
    k_.resize(mb * cfg_.kv_dim());
    v_.resize(mb * cfg_.kv_dim());
    att_out_.resize(mb * cfg_.dim);
    gate_.resize(mb * cfg_.hidden_dim);
    up_.resize(mb * cfg_.hidden_dim);
    hidden_.resize(mb * cfg_.hidden_dim);
    down_.resize(mb * cfg_.dim);
    logits_.resize(mb * cfg_.vocab_size);
    scores_.resize(mb * cfg_.n_heads * cfg_.max_seq_len);
    if (opts_.use_kv8 || paged()) {
        // Dequant scratch (KV8) or page-gather scratch (paged float): either
        // way the attention kernel consumes one contiguous history per task.
        kv_deq_k_.resize(mb * cfg_.n_kv_heads * cfg_.max_seq_len * cfg_.head_dim());
        kv_deq_v_.resize(mb * cfg_.n_kv_heads * cfg_.max_seq_len * cfg_.head_dim());
    }

    if (opts_.packed_weights) {
        check(qw_ != nullptr, "ReferenceEngine: packed_weights needs quantized weights");
        check(qw_->quant_config.bits == 4,
              "ReferenceEngine: packed_weights needs 4-bit codes");
        packed_.resize(cfg_.n_layers * 7 + 1);
        for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
            for (int which = kWq; which <= kWDown; ++which) {
                packed_[layer * 7 + static_cast<std::size_t>(which)] =
                    quant_proj(*qw_, layer, which).pack_codes();
            }
        }
        packed_[cfg_.n_layers * 7] = qw_->lm_head.pack_codes();
    }
}

const std::vector<Word512>& ReferenceEngine::packed_stream(std::size_t layer,
                                                           int which) const {
    return which == kLmHead ? packed_[cfg_.n_layers * 7]
                            : packed_[layer * 7 + static_cast<std::size_t>(which)];
}

void ReferenceEngine::reset() {
    for (std::size_t s = 0; s < opts_.max_batch; ++s) reset_session(s);
}

void ReferenceEngine::reset_session(std::size_t slot) {
    check(slot < opts_.max_batch, "reset_session: slot out of range");
    if (paged_quant_ != nullptr) {
        paged_quant_->reset_sequence(slot);  // pages back to the pool
    } else if (paged_float_ != nullptr) {
        paged_float_->reset_sequence(slot);
    } else if (opts_.use_kv8) {
        kv_quant_[slot].reset();
    } else {
        kv_float_[slot].reset();
    }
    pos_[slot] = 0;
}

void ReferenceEngine::proj(std::size_t layer, int which, std::size_t nb,
                           std::span<const float> x, std::span<float> y) {
    if (fw_ != nullptr) {
        const LayerWeights* lw = which == kLmHead ? nullptr : &fw_->layers[layer];
        const Matrix* m = nullptr;
        switch (which) {
            case kWq: m = &lw->wq; break;
            case kWk: m = &lw->wk; break;
            case kWv: m = &lw->wv; break;
            case kWo: m = &lw->wo; break;
            case kWGate: m = &lw->w_gate; break;
            case kWUp: m = &lw->w_up; break;
            case kWDown: m = &lw->w_down; break;
            case kLmHead: m = &fw_->lm_head; break;
        }
        // Float path: the golden reference, not the bandwidth fast path — each
        // lane runs the exact single-session kernel (rows still thread-split).
        const std::size_t rows = m->rows(), cols = m->cols();
        if (ThreadPool* p = pool(); p != nullptr) {
            p->parallel_for(rows, [&](std::size_t b, std::size_t e) {
                for (std::size_t lane = 0; lane < nb; ++lane) {
                    gemv_rows(*m, x.subspan(lane * cols, cols),
                              y.subspan(lane * rows, rows), b, e);
                }
            });
        } else {
            for (std::size_t lane = 0; lane < nb; ++lane) {
                gemv(*m, x.subspan(lane * cols, cols), y.subspan(lane * rows, rows));
            }
        }
    } else {
        const quant::QuantizedLinear& m = quant_proj(*qw_, layer, which);
        if (opts_.seed_baseline) {
            const std::vector<float> out = m.gemv_seed_baseline(x);
            std::copy(out.begin(), out.end(), y.begin());
        } else if (opts_.packed_weights) {
            m.gemm_packed(packed_stream(layer, which), x, nb, y, pool());
        } else {
            m.gemm(x, nb, y, pool());
        }
    }
}

std::span<const float> ReferenceEngine::attn_norm(std::size_t layer) const {
    return fw_ != nullptr ? std::span<const float>(fw_->layers[layer].attn_norm)
                          : std::span<const float>(qw_->layers[layer].attn_norm);
}

std::span<const float> ReferenceEngine::mlp_norm(std::size_t layer) const {
    return fw_ != nullptr ? std::span<const float>(fw_->layers[layer].mlp_norm)
                          : std::span<const float>(qw_->layers[layer].mlp_norm);
}

void ReferenceEngine::attention_block(std::size_t layer, std::size_t nb,
                                      std::span<const std::size_t> slots) {
    const obs::ScopedPhase phase(profiler_, obs::Phase::kAttention);
    const std::size_t dim = cfg_.dim;
    const std::size_t kvd = cfg_.kv_dim();
    for (std::size_t b = 0; b < nb; ++b) {
        rmsnorm(std::span<const float>(x_).subspan(b * dim, dim), attn_norm(layer),
                cfg_.rms_eps, std::span<float>(xb_).subspan(b * dim, dim));
    }

    proj(layer, kWq, nb, std::span<const float>(xb_).first(nb * dim),
         std::span<float>(q_).first(nb * dim));
    proj(layer, kWk, nb, std::span<const float>(xb_).first(nb * dim),
         std::span<float>(k_).first(nb * kvd));
    proj(layer, kWv, nb, std::span<const float>(xb_).first(nb * dim),
         std::span<float>(v_).first(nb * kvd));

    // RoPE on every query head and key head at each lane's own position, from
    // the table built at construction (no pow/sin/cos on the decode path).
    // The seed baseline recomputes the trigonometry per head per token.
    const std::size_t hd = cfg_.head_dim();
    for (std::size_t b = 0; b < nb; ++b) {
        const std::size_t pos = pos_[slots[b]];
        const std::span<float> qb = std::span<float>(q_).subspan(b * dim, dim);
        const std::span<float> kb = std::span<float>(k_).subspan(b * kvd, kvd);
        if (opts_.seed_baseline) {
            for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
                rope_rotate(qb.subspan(h * hd, hd), pos, cfg_.rope_theta);
            }
            for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
                rope_rotate(kb.subspan(h * hd, hd), pos, cfg_.rope_theta);
            }
        } else {
            const std::span<const float> cos_row = rope_.cos_row(pos);
            const std::span<const float> sin_row = rope_.sin_row(pos);
            for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
                rope_rotate_cached(qb.subspan(h * hd, hd), cos_row, sin_row);
            }
            for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
                rope_rotate_cached(kb.subspan(h * hd, hd), cos_row, sin_row);
            }
        }
        const std::span<const float> vb = std::span<const float>(v_).subspan(b * kvd, kvd);
        if (paged_quant_ != nullptr) {
            paged_quant_->append(slots[b], layer, kb, vb);
        } else if (paged_float_ != nullptr) {
            paged_float_->append(slots[b], layer, kb, vb);
        } else if (opts_.use_kv8) {
            kv_quant_[slots[b]].append(layer, kb, vb);
        } else {
            kv_float_[slots[b]].append(layer, kb, vb);
        }
    }

    const std::size_t heads_per_kv = cfg_.n_heads / cfg_.n_kv_heads;

    if (opts_.seed_baseline) {
        // Seed loop (single-session only): gather an owning per-query-head KV
        // copy and allocate scores inside attention_head, exactly like the
        // pre-fast-path code.
        const std::size_t slot = slots[0];
        const std::size_t ctx = pos_[slot] + 1;
        for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
            const std::size_t kvh = h / heads_per_kv;
            const std::vector<float> keys =
                opts_.use_kv8 ? kv_quant_[slot].keys_for_head(layer, kvh, ctx)
                              : kv_float_[slot].keys_for_head(layer, kvh, ctx);
            const std::vector<float> vals =
                opts_.use_kv8 ? kv_quant_[slot].values_for_head(layer, kvh, ctx)
                              : kv_float_[slot].values_for_head(layer, kvh, ctx);
            attention_head(std::span<const float>(q_).subspan(h * hd, hd), keys, vals,
                           ctx, hd, std::span<float>(att_out_).subspan(h * hd, hd));
        }
        proj(layer, kWo, nb, std::span<const float>(att_out_).first(dim),
             std::span<float>(xb_).first(dim));
        for (std::size_t i = 0; i < dim; ++i) x_[i] += xb_[i];
        return;
    }

    // One task per (lane, KV head): a lane's query-head cluster shares the
    // same history, so a quantized cache is dequantized once per cluster (not
    // once per query head), and parallel tasks touch disjoint scratch slices.
    const std::size_t slab = cfg_.max_seq_len * hd;
    auto lane_kv_task = [&](std::size_t task) {
        const std::size_t b = task / cfg_.n_kv_heads;
        const std::size_t kvh = task % cfg_.n_kv_heads;
        const std::size_t slot = slots[b];
        const std::size_t ctx = pos_[slot] + 1;
        const std::size_t deq = (b * cfg_.n_kv_heads + kvh) * slab;
        std::span<const float> keys, vals;
        if (paged_quant_ != nullptr) {
            keys = paged_quant_->dequant_keys_into(
                slot, layer, kvh, ctx, std::span<float>(kv_deq_k_).subspan(deq, slab));
            vals = paged_quant_->dequant_values_into(
                slot, layer, kvh, ctx, std::span<float>(kv_deq_v_).subspan(deq, slab));
        } else if (paged_float_ != nullptr) {
            // Per-page gather instead of one zero-copy span: the host pays a
            // copy for paging exactly where the device pays per-page bursts.
            keys = paged_float_->gather_keys(
                slot, layer, kvh, ctx, std::span<float>(kv_deq_k_).subspan(deq, slab));
            vals = paged_float_->gather_values(
                slot, layer, kvh, ctx, std::span<float>(kv_deq_v_).subspan(deq, slab));
        } else if (opts_.use_kv8) {
            keys = kv_quant_[slot].dequant_keys_into(
                layer, kvh, ctx, std::span<float>(kv_deq_k_).subspan(deq, slab));
            vals = kv_quant_[slot].dequant_values_into(
                layer, kvh, ctx, std::span<float>(kv_deq_v_).subspan(deq, slab));
        } else {
            keys = kv_float_[slot].keys_span(layer, kvh, ctx);
            vals = kv_float_[slot].values_span(layer, kvh, ctx);
        }
        for (std::size_t h = kvh * heads_per_kv; h < (kvh + 1) * heads_per_kv; ++h) {
            attention_head(
                std::span<const float>(q_).subspan(b * dim + h * hd, hd), keys, vals,
                ctx, hd, std::span<float>(att_out_).subspan(b * dim + h * hd, hd),
                std::span<float>(scores_).subspan(
                    (b * cfg_.n_heads + h) * cfg_.max_seq_len, cfg_.max_seq_len));
        }
    };
    const std::size_t n_tasks = nb * cfg_.n_kv_heads;
    if (ThreadPool* p = pool(); p != nullptr) {
        p->parallel_for(n_tasks, [&](std::size_t b, std::size_t e) {
            for (std::size_t t = b; t < e; ++t) lane_kv_task(t);
        });
    } else {
        for (std::size_t t = 0; t < n_tasks; ++t) lane_kv_task(t);
    }

    // Output projection + residual.
    proj(layer, kWo, nb, std::span<const float>(att_out_).first(nb * dim),
         std::span<float>(xb_).first(nb * dim));
    for (std::size_t i = 0; i < nb * dim; ++i) x_[i] += xb_[i];
}

void ReferenceEngine::mlp_block(std::size_t layer, std::size_t nb) {
    const std::size_t dim = cfg_.dim;
    const std::size_t hdim = cfg_.hidden_dim;
    for (std::size_t b = 0; b < nb; ++b) {
        rmsnorm(std::span<const float>(x_).subspan(b * dim, dim), mlp_norm(layer),
                cfg_.rms_eps, std::span<float>(xb_).subspan(b * dim, dim));
    }
    proj(layer, kWGate, nb, std::span<const float>(xb_).first(nb * dim),
         std::span<float>(gate_).first(nb * hdim));
    proj(layer, kWUp, nb, std::span<const float>(xb_).first(nb * dim),
         std::span<float>(up_).first(nb * hdim));
    for (std::size_t b = 0; b < nb; ++b) {
        silu_gate(std::span<const float>(gate_).subspan(b * hdim, hdim),
                  std::span<const float>(up_).subspan(b * hdim, hdim),
                  std::span<float>(hidden_).subspan(b * hdim, hdim));
    }
    proj(layer, kWDown, nb, std::span<const float>(hidden_).first(nb * hdim),
         std::span<float>(down_).first(nb * dim));
    for (std::size_t i = 0; i < nb * dim; ++i) x_[i] += down_[i];
}

std::span<const float> ReferenceEngine::decode_batch(
    std::span<const std::int32_t> tokens, std::span<const std::size_t> slots) {
    const std::size_t nb = tokens.size();
    check(nb >= 1, "decode_batch: empty batch");
    check(nb == slots.size(), "decode_batch: tokens/slots size mismatch");
    check(nb <= opts_.max_batch, "decode_batch: batch exceeds max_batch");
    check(!opts_.seed_baseline || nb == 1,
          "decode_batch: seed_baseline supports batch 1 only");
    for (std::size_t b = 0; b < nb; ++b) {
        check(slots[b] < opts_.max_batch, "decode_batch: slot out of range");
        for (std::size_t c = b + 1; c < nb; ++c) {
            check(slots[b] != slots[c], "decode_batch: duplicate slot");
        }
        check(tokens[b] >= 0 && static_cast<std::uint64_t>(tokens[b]) < cfg_.vocab_size,
              "decode_batch: token out of range");
        check(pos_[slots[b]] < cfg_.max_seq_len,
              "decode_batch: context window exhausted");
    }

    // Token embedding lookup, one row per lane.
    const Matrix& emb = fw_ != nullptr ? fw_->embedding : qw_->embedding;
    for (std::size_t b = 0; b < nb; ++b) {
        const auto row = emb.row(static_cast<std::size_t>(tokens[b]));
        std::copy(row.begin(), row.end(), x_.begin() + b * cfg_.dim);
    }

    for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
        attention_block(layer, nb, slots);
        mlp_block(layer, nb);
    }
    for (std::size_t b = 0; b < nb; ++b) ++pos_[slots[b]];

    const std::span<const float> fnorm =
        fw_ != nullptr ? std::span<const float>(fw_->final_norm)
                       : std::span<const float>(qw_->final_norm);
    for (std::size_t b = 0; b < nb; ++b) {
        rmsnorm(std::span<const float>(x_).subspan(b * cfg_.dim, cfg_.dim), fnorm,
                cfg_.rms_eps, std::span<float>(xb_).subspan(b * cfg_.dim, cfg_.dim));
    }
    proj(0, kLmHead, nb, std::span<const float>(xb_).first(nb * cfg_.dim),
         std::span<float>(logits_).first(nb * cfg_.vocab_size));
    return std::span<const float>(logits_).first(nb * cfg_.vocab_size);
}

std::size_t ReferenceEngine::probe_prefix(std::span<const std::int32_t> prompt,
                                          std::size_t max_cover) const {
    if (!opts_.prefix_sharing) return 0;
    const std::vector<std::uint64_t> hashes =
        prefix::prefix_chain_hashes(prompt, opts_.kv_page_tokens);
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    const std::size_t matched = prefix_index_.match(hashes).size();
    return std::min(matched * opts_.kv_page_tokens, max_cover);
}

std::size_t ReferenceEngine::adopt_prefix(std::size_t slot,
                                          std::span<const std::int32_t> prompt,
                                          std::size_t max_cover) {
    if (!opts_.prefix_sharing) return 0;
    check(slot < opts_.max_batch, "adopt_prefix: slot out of range");
    check(pos_[slot] == 0, "adopt_prefix: slot already holds history");
    const std::size_t pt = opts_.kv_page_tokens;
    const std::vector<std::uint64_t> hashes = prefix::prefix_chain_hashes(prompt, pt);
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    const std::vector<std::size_t> pages = prefix_index_.match(hashes);
    const std::size_t covered = std::min(pages.size() * pt, max_cover);
    if (covered == 0) return 0;
    // Adopt only the pages the covered tokens reach: the cap may stop
    // mid-page (the last prompt token is always re-fed so the session gets
    // its logits), in which case the first write CoWs that page.
    const std::size_t n_pages = (covered + pt - 1) / pt;
    const std::span<const std::size_t> chain(pages.data(), n_pages);
    if (paged_quant_ != nullptr) {
        paged_quant_->adopt_prefix(slot, chain, covered);
    } else {
        paged_float_->adopt_prefix(slot, chain, covered);
    }
    pos_[slot] = covered;
    prefix_hits_.fetch_add(1, std::memory_order_relaxed);
    prefix_covered_.fetch_add(covered, std::memory_order_relaxed);
    return covered;
}

std::size_t ReferenceEngine::register_prefix(std::size_t slot,
                                             std::span<const std::int32_t> prompt,
                                             std::size_t max_new_pages) {
    if (!opts_.prefix_sharing || max_new_pages == 0) return 0;
    check(slot < opts_.max_batch, "register_prefix: slot out of range");
    const std::size_t pt = opts_.kv_page_tokens;
    const std::vector<std::uint64_t> hashes = prefix::prefix_chain_hashes(prompt, pt);
    kvpool::KvBlockPool& pool = pool_ref();
    // Every full prompt page must already be resident in the slot (its
    // prefill just completed).
    if (pool.seq_tokens(slot) < hashes.size() * pt) return 0;
    const std::vector<std::size_t>& table = pool.block_table(slot);
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    std::size_t pinned = 0;
    for (std::size_t k = 0; k < hashes.size() && pinned < max_new_pages; ++k) {
        const std::uint64_t parent = k == 0 ? 0 : hashes[k - 1];
        if (!prefix_index_.insert(hashes[k], table[k], parent, k)) continue;
        pool.retain_page(table[k]);  // the index's own reference
        ++pinned;
    }
    return pinned;
}

std::size_t ReferenceEngine::drop_prefix_cache() {
    if (!opts_.prefix_sharing) return 0;
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    const std::vector<std::size_t> pages = prefix_index_.clear();
    kvpool::KvBlockPool& pool = pool_ref();
    for (const std::size_t p : pages) pool.release_page(p);
    return pages.size();
}

engine::PrefixSharingStats ReferenceEngine::prefix_stats() const {
    if (!opts_.prefix_sharing) return {};
    engine::PrefixSharingStats s;
    s.hits = prefix_hits_.load(std::memory_order_relaxed);
    s.covered_tokens = prefix_covered_.load(std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(prefix_mu_);
        s.pages_shared = prefix_index_.pages_held();
    }
    s.cow_copies = static_cast<std::size_t>(pool_ref().cow_copies());
    return s;
}

std::size_t ReferenceEngine::reserve_slot() { return slots_.acquire(); }

void ReferenceEngine::release_slot(std::size_t slot) {
    check(slots_.release(slot), "release_slot: slot out of range or not reserved");
    reset_session(slot);
}

void ReferenceEngine::decode_batch(std::span<const std::int32_t> tokens,
                                   std::span<const std::size_t> slots,
                                   std::span<float> logits_out) {
    check(logits_out.size() >= tokens.size() * cfg_.vocab_size,
          "decode_batch: logits_out too small");
    const auto t0 = std::chrono::steady_clock::now();
    const std::span<const float> logits = decode_batch(tokens, slots);
    const auto t1 = std::chrono::steady_clock::now();
    std::copy(logits.begin(), logits.end(), logits_out.begin());
    last_cost_.wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    last_cost_.simulated_ns = 0.0;  // the host IS the wall clock
    last_cost_.weight_walks = 1.0;  // one skinny-GEMM pass per step
}

std::span<const float> ReferenceEngine::decode(std::int32_t token) {
    const std::size_t slot0 = 0;
    return decode_batch(std::span<const std::int32_t>(&token, 1),
                        std::span<const std::size_t>(&slot0, 1));
}

std::vector<float> ReferenceEngine::forward(std::int32_t token) {
    const std::span<const float> logits = decode(token);
    return std::vector<float>(logits.begin(), logits.end());
}

std::vector<float> ReferenceEngine::prefill(std::span<const std::int32_t> tokens) {
    check(!tokens.empty(), "ReferenceEngine: empty prompt");
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) (void)decode(tokens[i]);
    return forward(tokens.back());
}

}  // namespace efld::model
