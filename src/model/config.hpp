// LLaMA-family model geometry and storage footprints.
//
// Bandwidth and capacity — the two quantities the paper pushes to the limit —
// are pure functions of model geometry and quantization scheme. This header
// is the single source of truth for both, used by the memory planner
// (Fig. 1), the cycle model (decode time), and the analytic comparison
// tables (Tables II and III).
#pragma once

#include <cstdint>
#include <string>

namespace efld::model {

struct ModelConfig {
    std::string name;
    std::uint64_t dim = 0;         // hidden size
    std::uint64_t n_layers = 0;
    std::uint64_t n_heads = 0;
    std::uint64_t n_kv_heads = 0;  // < n_heads => grouped-query attention
    std::uint64_t hidden_dim = 0;  // MLP intermediate size
    std::uint64_t vocab_size = 0;
    std::uint64_t max_seq_len = 1024;  // KV-cache reservation (paper: 1024)
    float rope_theta = 10000.0f;
    float rms_eps = 1e-5f;

    [[nodiscard]] std::uint64_t head_dim() const noexcept { return dim / n_heads; }
    [[nodiscard]] std::uint64_t kv_dim() const noexcept { return n_kv_heads * head_dim(); }

    // Parameter counts ------------------------------------------------------
    [[nodiscard]] std::uint64_t attn_params_per_layer() const noexcept;
    [[nodiscard]] std::uint64_t mlp_params_per_layer() const noexcept;
    [[nodiscard]] std::uint64_t norm_params() const noexcept;
    [[nodiscard]] std::uint64_t embedding_params() const noexcept { return vocab_size * dim; }
    [[nodiscard]] std::uint64_t lm_head_params() const noexcept { return vocab_size * dim; }
    [[nodiscard]] std::uint64_t layer_params() const noexcept {
        return n_layers * (attn_params_per_layer() + mlp_params_per_layer());
    }
    [[nodiscard]] std::uint64_t total_params() const noexcept;

    // Presets ---------------------------------------------------------------
    [[nodiscard]] static ModelConfig llama2_7b();
    [[nodiscard]] static ModelConfig tinyllama_1_1b();
    [[nodiscard]] static ModelConfig gpt2_1_5b_geometry();   // byte-count stand-in
    [[nodiscard]] static ModelConfig chatglm_6b_geometry();  // byte-count stand-in
    // Small configs for functional tests (bus-format compatible: dim % 128 == 0).
    [[nodiscard]] static ModelConfig tiny_512();   // dim 512, 4 layers
    [[nodiscard]] static ModelConfig micro_256();  // dim 256, 2 layers
};

// Storage scheme mirroring the deployed model (§IV, §VII.A):
// projections W4 group-128 (AWQ), lm_head W4, embedding table fp16,
// norm vectors fp16, KV cache 8-bit with 32-bit scale-zero packs.
struct QuantScheme {
    unsigned weight_bits = 4;
    std::uint64_t group_size = 128;
    unsigned kv_bits = 8;
    bool embedding_fp16 = true;  // embedding table kept at fp16
    bool lm_head_quantized = true;

    [[nodiscard]] static QuantScheme w4a16_kv8() { return QuantScheme{}; }
    [[nodiscard]] static QuantScheme w8a16_kv8() {
        QuantScheme s;
        s.weight_bits = 8;
        return s;
    }
    [[nodiscard]] static QuantScheme fp16_baseline() {
        QuantScheme s;
        s.weight_bits = 16;
        s.kv_bits = 16;
        return s;
    }

    // Bytes per quantized weight including per-group scale (fp16) and packed
    // zero point.
    [[nodiscard]] double bytes_per_weight() const noexcept {
        if (weight_bits >= 16) return 2.0;
        return static_cast<double>(weight_bits) / 8.0 +
               (2.0 + static_cast<double>(weight_bits) / 8.0) /
                   static_cast<double>(group_size);
    }
};

// Byte footprints of a (config, scheme) pair.
struct ModelFootprint {
    std::uint64_t embedding_bytes = 0;
    std::uint64_t layer_weight_bytes = 0;  // all transformer projections
    std::uint64_t lm_head_bytes = 0;
    std::uint64_t norm_bytes = 0;
    std::uint64_t kv_cache_bytes = 0;      // codes for max_seq_len tokens
    std::uint64_t kv_pack_bytes = 0;       // scale-zero packs

    [[nodiscard]] std::uint64_t weight_bytes() const noexcept {
        return embedding_bytes + layer_weight_bytes + lm_head_bytes + norm_bytes;
    }
    [[nodiscard]] std::uint64_t kv_total_bytes() const noexcept {
        return kv_cache_bytes + kv_pack_bytes;
    }
    [[nodiscard]] std::uint64_t total_bytes() const noexcept {
        return weight_bytes() + kv_total_bytes();
    }
};

[[nodiscard]] ModelFootprint compute_footprint(const ModelConfig& cfg,
                                               const QuantScheme& scheme);

// Bytes that must cross the memory bus to decode ONE token at context length
// `ctx`: every weight once (decoding is GEMV — zero reuse), the KV cache of
// all previous tokens read once, and the new token's KV written once.
struct DecodeTraffic {
    std::uint64_t weight_read_bytes = 0;
    std::uint64_t kv_read_bytes = 0;
    std::uint64_t kv_write_bytes = 0;
    std::uint64_t embedding_read_bytes = 0;  // one row of the table

    [[nodiscard]] std::uint64_t total_bytes() const noexcept {
        return weight_read_bytes + kv_read_bytes + kv_write_bytes + embedding_read_bytes;
    }
};

[[nodiscard]] DecodeTraffic decode_traffic(const ModelConfig& cfg,
                                           const QuantScheme& scheme, std::uint64_t ctx);

// The paper's "theoretical peak decoding speed": bandwidth divided by the
// model-weight bytes per token (Table II/III footnote 1).
[[nodiscard]] double theoretical_tokens_per_s(const ModelConfig& cfg,
                                              const QuantScheme& scheme,
                                              double bandwidth_bytes_per_s);

}  // namespace efld::model
