#include "model/kv_cache.hpp"

#include "common/check.hpp"

namespace efld::model {

KvCache::KvCache(const ModelConfig& cfg) : cfg_(cfg), k_(cfg.n_layers), v_(cfg.n_layers) {
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
        k_[l].resize(cfg.max_seq_len * cfg.kv_dim());
        v_[l].resize(cfg.max_seq_len * cfg.kv_dim());
    }
}

void KvCache::append(std::size_t layer, std::span<const float> k, std::span<const float> v) {
    check(layer < cfg_.n_layers, "KvCache: layer out of range");
    check(k.size() == cfg_.kv_dim() && v.size() == cfg_.kv_dim(), "KvCache: bad vector size");
    check(len_ < cfg_.max_seq_len, "KvCache: capacity exceeded");
    const std::size_t hd = cfg_.head_dim();
    // Scatter the packed [head][head_dim] token vector into the per-head
    // slabs; the write is strided so every read can be contiguous.
    for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
        const std::size_t off = head_slab(h) + len_ * hd;
        std::copy(k.begin() + static_cast<std::ptrdiff_t>(h * hd),
                  k.begin() + static_cast<std::ptrdiff_t>((h + 1) * hd),
                  k_[layer].begin() + static_cast<std::ptrdiff_t>(off));
        std::copy(v.begin() + static_cast<std::ptrdiff_t>(h * hd),
                  v.begin() + static_cast<std::ptrdiff_t>((h + 1) * hd),
                  v_[layer].begin() + static_cast<std::ptrdiff_t>(off));
    }
    // All layers append at the same position; advance after the last layer.
    if (++appended_this_pos_ == cfg_.n_layers) {
        appended_this_pos_ = 0;
        ++len_;
    }
}

std::span<const float> KvCache::keys_span(std::size_t layer, std::size_t kv_head,
                                          std::size_t len) const {
    check(layer < cfg_.n_layers && kv_head < cfg_.n_kv_heads, "KvCache: bad head");
    check(len <= cfg_.max_seq_len, "KvCache: history longer than capacity");
    return std::span<const float>(k_[layer]).subspan(head_slab(kv_head),
                                                     len * cfg_.head_dim());
}

std::span<const float> KvCache::values_span(std::size_t layer, std::size_t kv_head,
                                            std::size_t len) const {
    check(layer < cfg_.n_layers && kv_head < cfg_.n_kv_heads, "KvCache: bad head");
    check(len <= cfg_.max_seq_len, "KvCache: history longer than capacity");
    return std::span<const float>(v_[layer]).subspan(head_slab(kv_head),
                                                     len * cfg_.head_dim());
}

std::vector<float> KvCache::keys_for_head(std::size_t layer, std::size_t kv_head,
                                          std::size_t len) const {
    const std::span<const float> s = keys_span(layer, kv_head, len);
    return std::vector<float>(s.begin(), s.end());
}

std::vector<float> KvCache::values_for_head(std::size_t layer, std::size_t kv_head,
                                            std::size_t len) const {
    const std::span<const float> s = values_span(layer, kv_head, len);
    return std::vector<float>(s.begin(), s.end());
}

QuantizedKvCache::QuantizedKvCache(const ModelConfig& cfg, unsigned kv_bits)
    : cfg_(cfg),
      kv_bits_(kv_bits),
      k_(cfg.n_layers * cfg.max_seq_len * cfg.n_kv_heads),
      v_(cfg.n_layers * cfg.max_seq_len * cfg.n_kv_heads) {}

std::size_t QuantizedKvCache::slot(std::size_t layer, std::size_t token,
                                   std::size_t kv_head) const noexcept {
    return (layer * cfg_.max_seq_len + token) * cfg_.n_kv_heads + kv_head;
}

void QuantizedKvCache::append(std::size_t layer, std::span<const float> k,
                              std::span<const float> v) {
    check(layer < cfg_.n_layers, "QuantizedKvCache: layer out of range");
    check(k.size() == cfg_.kv_dim() && v.size() == cfg_.kv_dim(),
          "QuantizedKvCache: bad vector size");
    check(len_ < cfg_.max_seq_len, "QuantizedKvCache: capacity exceeded");
    const std::size_t hd = cfg_.head_dim();
    for (std::size_t h = 0; h < cfg_.n_kv_heads; ++h) {
        // Per-head quantization: one scale-zero pack per head per token, the
        // granularity the SPU quantizer and the Fig. 4B FIFO operate at.
        quant::KvQuantized qk = quant::kv_quantize_bits(k.subspan(h * hd, hd), kv_bits_);
        quant::KvQuantized qv = quant::kv_quantize_bits(v.subspan(h * hd, hd), kv_bits_);
        k_[slot(layer, len_, h)] = {std::move(qk.codes), qk.params};
        v_[slot(layer, len_, h)] = {std::move(qv.codes), qv.params};
    }
    if (++appended_this_pos_ == cfg_.n_layers) {
        appended_this_pos_ = 0;
        ++len_;
    }
}

std::span<const float> QuantizedKvCache::dequant_keys_into(std::size_t layer,
                                                           std::size_t kv_head,
                                                           std::size_t len,
                                                           std::span<float> out) const {
    const std::size_t hd = cfg_.head_dim();
    check(out.size() >= len * hd, "QuantizedKvCache: dequant scratch too small");
    for (std::size_t t = 0; t < len; ++t) {
        const Entry& e = k_[slot(layer, t, kv_head)];
        quant::kv_dequantize_into(e.codes, e.params, out.subspan(t * hd, hd));
    }
    return out.first(len * hd);
}

std::span<const float> QuantizedKvCache::dequant_values_into(std::size_t layer,
                                                             std::size_t kv_head,
                                                             std::size_t len,
                                                             std::span<float> out) const {
    const std::size_t hd = cfg_.head_dim();
    check(out.size() >= len * hd, "QuantizedKvCache: dequant scratch too small");
    for (std::size_t t = 0; t < len; ++t) {
        const Entry& e = v_[slot(layer, t, kv_head)];
        quant::kv_dequantize_into(e.codes, e.params, out.subspan(t * hd, hd));
    }
    return out.first(len * hd);
}

std::vector<float> QuantizedKvCache::keys_for_head(std::size_t layer, std::size_t kv_head,
                                                   std::size_t len) const {
    std::vector<float> out(len * cfg_.head_dim());
    dequant_keys_into(layer, kv_head, len, out);
    return out;
}

std::vector<float> QuantizedKvCache::values_for_head(std::size_t layer, std::size_t kv_head,
                                                     std::size_t len) const {
    std::vector<float> out(len * cfg_.head_dim());
    dequant_values_into(layer, kv_head, len, out);
    return out;
}

quant::KvQuantParams QuantizedKvCache::key_params(std::size_t layer, std::size_t token,
                                                  std::size_t kv_head) const {
    return k_[slot(layer, token, kv_head)].params;
}

quant::KvQuantParams QuantizedKvCache::value_params(std::size_t layer, std::size_t token,
                                                    std::size_t kv_head) const {
    return v_[slot(layer, token, kv_head)].params;
}

}  // namespace efld::model
