// Byte-level tokenizer (stand-in for the SentencePiece vocab we cannot ship).
//
// On the real system the PS CPU runs the tokenizer; the accelerator only sees
// token indices. A byte-level scheme preserves exactly that interface:
// ids 0..2 are specials, 3..258 are raw bytes, and ids above that are
// reserved for learned merges (a greedy longest-match merge table can be
// loaded for tests of multi-byte tokens).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace efld::model {

class ByteTokenizer {
public:
    static constexpr std::int32_t kPad = 0;
    static constexpr std::int32_t kBos = 1;
    static constexpr std::int32_t kEos = 2;
    static constexpr std::int32_t kByteBase = 3;

    ByteTokenizer() = default;

    // Adds a merge entry: `text` becomes a single token id (longest match wins).
    void add_merge(std::string text);

    [[nodiscard]] std::vector<std::int32_t> encode(std::string_view text,
                                                   bool add_bos = true) const;
    [[nodiscard]] std::string decode(const std::vector<std::int32_t>& ids) const;
    [[nodiscard]] std::string decode_token(std::int32_t id) const;

    [[nodiscard]] std::int32_t vocab_size() const noexcept {
        return kByteBase + 256 + static_cast<std::int32_t>(merges_.size());
    }

private:
    std::vector<std::string> merges_;  // id = kByteBase + 256 + index
};

}  // namespace efld::model
