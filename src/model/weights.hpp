// Model weight containers: float (golden) and W4A16-quantized forms.
//
// Real LLaMA2 checkpoints are not available offline, so weights are generated
// synthetically with a seeded RNG at realistic magnitudes (~N(0, 1/sqrt(dim))).
// Bandwidth/capacity results depend only on geometry; numerics are validated
// by comparing the quantized pipeline against these float weights.
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "model/tensor.hpp"
#include "quant/groupquant.hpp"

namespace efld::model {

struct LayerWeights {
    Matrix wq;  // [dim, dim]
    Matrix wk;  // [kv_dim, dim]
    Matrix wv;  // [kv_dim, dim]
    Matrix wo;  // [dim, dim]
    Matrix w_gate;  // [hidden, dim]
    Matrix w_up;    // [hidden, dim]
    Matrix w_down;  // [dim, hidden]
    Vector attn_norm;  // [dim]
    Vector mlp_norm;   // [dim]
};

struct ModelWeights {
    ModelConfig config;
    Matrix embedding;  // [vocab, dim]
    std::vector<LayerWeights> layers;
    Vector final_norm;  // [dim]
    Matrix lm_head;     // [vocab, dim]

    // Deterministic synthetic initialization.
    [[nodiscard]] static ModelWeights synthetic(const ModelConfig& cfg, std::uint64_t seed);
};

struct QuantizedLayerWeights {
    quant::QuantizedLinear wq, wk, wv, wo, w_gate, w_up, w_down;
    Vector attn_norm;
    Vector mlp_norm;
};

struct QuantizedModelWeights {
    ModelConfig config;
    quant::GroupQuantConfig quant_config;
    Matrix embedding;  // fp16-resolution values kept in float storage
    std::vector<QuantizedLayerWeights> layers;
    Vector final_norm;
    quant::QuantizedLinear lm_head;

    // Quantizes every projection of a float model (plain group quant; the
    // AWQ search variant lives in quant/awq.hpp and is exercised separately).
    [[nodiscard]] static QuantizedModelWeights quantize(const ModelWeights& w,
                                                        const quant::GroupQuantConfig& qc);
};

}  // namespace efld::model
