// Software reference inference engine (the golden model).
//
// Runs a full LLaMA-style forward pass in float32, with optional W4A16
// weights and/or KV8 cache so each quantization stage of the deployed
// pipeline can be validated in isolation:
//
//   float weights + float KV   -> pure golden
//   W4A16 weights + float KV   -> weight-quantization effect only
//   W4A16 weights + KV8 cache  -> software twin of the accelerator
//
// The engine is single-token autoregressive (the decode phase the paper
// optimizes); prefill is a loop over prompt tokens, exactly like the
// bare-metal host does on the KV260.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/kv_cache.hpp"
#include "model/weights.hpp"

namespace efld::model {

class ReferenceEngine {
public:
    // Non-owning: `weights` must outlive the engine. `kv_bits` selects the
    // cache grid when the quantized cache is enabled (8 = KV8, 4 = KV4).
    explicit ReferenceEngine(const ModelWeights& weights, bool use_kv8 = false,
                             unsigned kv_bits = 8);
    explicit ReferenceEngine(const QuantizedModelWeights& weights, bool use_kv8 = false,
                             unsigned kv_bits = 8);

    // Runs one token at the next position; returns logits [vocab].
    std::vector<float> forward(std::int32_t token);

    // Feeds a prompt token by token; returns the logits after the last one.
    std::vector<float> prefill(std::span<const std::int32_t> tokens);

    [[nodiscard]] std::size_t position() const noexcept { return pos_; }
    [[nodiscard]] const ModelConfig& config() const noexcept { return cfg_; }
    void reset();

private:
    void attention_block(std::size_t layer, std::span<float> x);
    void mlp_block(std::size_t layer, std::span<float> x);

    // Weight accessors bridging the float / quantized storage.
    void proj(std::size_t layer, int which, std::span<const float> x, std::span<float> y) const;
    [[nodiscard]] std::span<const float> attn_norm(std::size_t layer) const;
    [[nodiscard]] std::span<const float> mlp_norm(std::size_t layer) const;

    ModelConfig cfg_;
    const ModelWeights* fw_ = nullptr;
    const QuantizedModelWeights* qw_ = nullptr;
    bool use_kv8_ = false;

    KvCache kv_float_;
    QuantizedKvCache kv_quant_;
    std::size_t pos_ = 0;

    // Scratch buffers reused across tokens (no per-token allocation).
    std::vector<float> xb_, q_, k_, v_, att_out_, gate_, up_, hidden_, logits_;
};

}  // namespace efld::model
