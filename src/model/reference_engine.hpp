// Software reference inference engine (the golden model).
//
// Runs a full LLaMA-style forward pass in float32, with optional W4A16
// weights and/or KV8 cache so each quantization stage of the deployed
// pipeline can be validated in isolation:
//
//   float weights + float KV   -> pure golden
//   W4A16 weights + float KV   -> weight-quantization effect only
//   W4A16 weights + KV8 cache  -> software twin of the accelerator
//
// The engine is single-token autoregressive (the decode phase the paper
// optimizes); prefill is a loop over prompt tokens, exactly like the
// bare-metal host does on the KV260.
//
// The decode loop is allocation-free: projections run through the fused
// quantized GEMV/GEMM fast path (or preallocated buffers on the float path),
// RoPE trigonometry is precomputed per position at construction, attention
// reuses per-head scores scratch, and the KV history is read as zero-copy
// spans (float cache) or dequantized into persistent per-head scratch
// (quantized cache). With `threads > 1` GEMV rows and attention KV-head
// clusters are partitioned across a persistent worker pool; results are
// bit-for-bit independent of the thread count.
//
// Multi-session decode: with `max_batch > 1` the engine owns that many
// session slots, each with its own KV cache and position. `decode_batch`
// advances any subset of them in lockstep, walking the quantized weights
// ONCE per step via the skinny-GEMM fast path — decoding is weight-bound, so
// amortizing the walk across sessions is the host-side mirror of the paper's
// bandwidth argument. Every slot's logits are bit-for-bit identical to what
// a dedicated single-session engine fed the same tokens would produce.
//
// Paged KV (EngineOptions::kv_page_tokens > 0): slots draw fixed-size token
// pages from a shared kvpool arena instead of reserving max_seq_len each, so
// aggregate KV capacity follows the pool budget (the paper's capacity axis)
// rather than max_batch x context window. Histories are gathered per page
// into scratch before attention; logits stay bit-for-bit identical to the
// contiguous path on every option combination.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/threadpool.hpp"
#include "engine/decode_backend.hpp"
#include "kvpool/paged_kv_cache.hpp"
#include "model/kernels.hpp"
#include "model/kv_cache.hpp"
#include "model/weights.hpp"
#include "prefix/prefix_index.hpp"

namespace efld::model {

struct EngineOptions {
    bool use_kv8 = false;  // quantized KV cache instead of float
    unsigned kv_bits = 8;  // cache grid when use_kv8 (8 = KV8, 4 = KV4)
    // Reproduces the pre-fast-path decode loop — allocating GEMV with a
    // sequential accumulator, per-element RoPE trigonometry, per-query-head
    // KV copies, allocating attention scores — as the benchmark "before".
    bool seed_baseline = false;
    // 1 = fully single-threaded; N > 1 = private worker pool of N; 0 = borrow
    // the process-wide ThreadPool::global() (sized by
    // runtime::SessionOptions::host_threads or ThreadPool::set_global_threads).
    // A private pool wider than the machine is rejected at construction —
    // oversubscription only adds context switches; borrow the global pool for
    // process-wide sizing instead.
    std::size_t threads = 1;
    // Concurrent session slots (KV caches + positions) for decode_batch.
    std::size_t max_batch = 1;
    // Walk projections through the packed 4-bit bus streams (pack_codes) the
    // way the hardware does, instead of the byte-per-code functional storage.
    // Requires quantized weights with 4-bit codes. Bit-for-bit identical.
    bool packed_weights = false;
    // Paged KV cache: > 0 replaces the per-slot max_seq_len reservations with
    // a shared kvpool arena of kv_page_tokens-token pages — slots take pages
    // as their history grows and return them on release, so aggregate KV
    // capacity is the POOL size, not max_batch x max_seq_len. Logits are
    // bit-for-bit identical to the contiguous path. 0 = contiguous caches.
    std::size_t kv_page_tokens = 0;
    // Pool size in pages when paging. 0 = worst case (max_batch full-context
    // sessions — paging layout without capacity pressure); an admission layer
    // (serve::ServeEngine's CapacityGovernor) sizes this from the DDR budget.
    std::size_t kv_pool_pages = 0;
    // Prefix sharing over the paged pool (requires kv_page_tokens > 0): the
    // engine keeps a PrefixIndex of chained full-page prompt hashes; sessions
    // whose prompts start with an indexed prefix adopt those pages read-only
    // (refcounted, copy-on-write on divergence) instead of re-prefilling.
    // Off by default — sharing changes admission capacity, so the serving
    // layer opts in explicitly.
    bool prefix_sharing = false;
};

// Throws std::invalid_argument on option combinations that would silently
// misbehave: max_batch == 0 (no session slots) or a private thread pool wider
// than the hardware. Called by the engine constructor; exposed so serving
// layers can validate before building anything expensive.
void validate(const EngineOptions& opts);

class ReferenceEngine : public engine::DecodeBackend {
public:
    // Non-owning: `weights` must outlive the engine.
    ReferenceEngine(const ModelWeights& weights, EngineOptions opts);
    ReferenceEngine(const QuantizedModelWeights& weights, EngineOptions opts);

    // Historical constructors, kept for existing call sites.
    explicit ReferenceEngine(const ModelWeights& weights, bool use_kv8 = false,
                             unsigned kv_bits = 8);
    explicit ReferenceEngine(const QuantizedModelWeights& weights, bool use_kv8 = false,
                             unsigned kv_bits = 8);

    // Runs one token at the next position (session slot 0); returns logits
    // [vocab].
    std::vector<float> forward(std::int32_t token);

    // Allocation-free forward on slot 0: the returned span aliases internal
    // scratch and is valid until the next decode/forward/reset call.
    std::span<const float> decode(std::int32_t token);

    // Advances tokens[i] through session slot slots[i] for every i, in one
    // weight walk. Slots must be distinct and < max_batch; each slot keeps
    // its own KV history and position, so sessions at different context
    // lengths batch together freely (continuous batching joins at token
    // boundaries). Returns logits [tokens.size()][vocab], row i = slots[i],
    // aliasing internal scratch like decode().
    std::span<const float> decode_batch(std::span<const std::int32_t> tokens,
                                        std::span<const std::size_t> slots);

    // Feeds a prompt token by token (slot 0); returns the logits after the
    // last one.
    std::vector<float> prefill(std::span<const std::int32_t> tokens);

    [[nodiscard]] std::size_t position() const noexcept { return pos_[0]; }
    [[nodiscard]] const EngineOptions& options() const noexcept { return opts_; }
    void reset_session(std::size_t slot);  // one slot's KV history + position

    // --- engine::DecodeBackend ---
    // The historical single-stream entry points above (decode/forward/prefill)
    // operate on slot 0 without reserving it; callers mixing them with slot
    // reservation should reserve slot 0 first (InferenceSession does).
    [[nodiscard]] const ModelConfig& config() const noexcept override { return cfg_; }
    [[nodiscard]] std::size_t max_batch() const noexcept override { return opts_.max_batch; }
    [[nodiscard]] std::string_view name() const noexcept override { return "host"; }
    [[nodiscard]] std::size_t position(std::size_t slot) const override {
        return pos_.at(slot);
    }
    [[nodiscard]] std::size_t reserve_slot() override;
    void release_slot(std::size_t slot) override;
    void decode_batch(std::span<const std::int32_t> tokens,
                      std::span<const std::size_t> slots,
                      std::span<float> logits_out) override;
    void reset() override;  // all slots (reservations survive)
    [[nodiscard]] engine::StepCost last_step_cost() const noexcept override {
        return last_cost_;
    }
    void set_profiler(obs::Profiler* profiler) override { profiler_ = profiler; }

    // Prefix sharing (active when opts_.prefix_sharing): see decode_backend.hpp
    // for the contract. probe is safe from any thread (the router's affinity
    // snapshot); adopt/register/drop run on the driver thread that owns the
    // pool, with the index itself guarded by prefix_mu_.
    [[nodiscard]] std::size_t probe_prefix(std::span<const std::int32_t> prompt,
                                           std::size_t max_cover) const override;
    std::size_t adopt_prefix(std::size_t slot, std::span<const std::int32_t> prompt,
                             std::size_t max_cover) override;
    std::size_t register_prefix(std::size_t slot,
                                std::span<const std::int32_t> prompt,
                                std::size_t max_new_pages) override;
    std::size_t drop_prefix_cache() override;
    [[nodiscard]] engine::PrefixSharingStats prefix_stats() const override;

private:
    void init_scratch();
    void attention_block(std::size_t layer, std::size_t nb,
                         std::span<const std::size_t> slots);
    void mlp_block(std::size_t layer, std::size_t nb);

    // Batched weight accessor bridging the float / quantized storage:
    // x is [nb][in], y is [nb][out], lanes contiguous.
    void proj(std::size_t layer, int which, std::size_t nb, std::span<const float> x,
              std::span<float> y);
    [[nodiscard]] std::span<const float> attn_norm(std::size_t layer) const;
    [[nodiscard]] std::span<const float> mlp_norm(std::size_t layer) const;

    // Active worker pool: the private one, the shared global one (threads ==
    // 0), or nullptr when the effective pool would be single-threaded anyway.
    [[nodiscard]] ThreadPool* pool() noexcept {
        if (pool_ != nullptr) return pool_.get();
        if (opts_.threads == 0) {
            ThreadPool& g = ThreadPool::global();
            return g.size() > 1 ? &g : nullptr;
        }
        return nullptr;
    }

    ModelConfig cfg_;
    EngineOptions opts_;
    const ModelWeights* fw_ = nullptr;
    const QuantizedModelWeights* qw_ = nullptr;

    [[nodiscard]] bool paged() const noexcept { return opts_.kv_page_tokens > 0; }

    // Per-session-slot state (size max_batch). Only the cache variant the
    // options select is constructed; the other vectors stay empty. With
    // paging, slot s is sequence s of the shared arena instead.
    std::vector<KvCache> kv_float_;
    std::vector<QuantizedKvCache> kv_quant_;
    std::unique_ptr<kvpool::PagedKvArena> paged_float_;
    std::unique_ptr<kvpool::PagedQuantizedKvArena> paged_quant_;
    std::vector<std::size_t> pos_;
    engine::SlotLedger slots_;  // DecodeBackend reservations
    engine::StepCost last_cost_{};
    obs::Profiler* profiler_ = nullptr;  // serving-layer owned; may be null

    // The live paged pool behind whichever arena the options selected (only
    // valid when paged()).
    [[nodiscard]] kvpool::KvBlockPool& pool_ref() noexcept {
        return paged_quant_ != nullptr ? paged_quant_->pool() : paged_float_->pool();
    }
    [[nodiscard]] const kvpool::KvBlockPool& pool_ref() const noexcept {
        return paged_quant_ != nullptr ? paged_quant_->pool() : paged_float_->pool();
    }

    // Prefix index + its lock (probe reads cross-thread while the driver
    // adopts/registers). Hit counters are relaxed atomics so prefix_stats
    // stays callable from the stats path without ordering games.
    mutable std::mutex prefix_mu_;
    prefix::PrefixIndex prefix_index_;
    std::atomic<std::size_t> prefix_hits_{0};
    std::atomic<std::size_t> prefix_covered_{0};

    std::unique_ptr<ThreadPool> pool_;  // only when opts_.threads > 1
    RopeTable rope_;                    // per-position sin/cos, built once

    // Packed 4-bit bus streams, one per projection, built at construction
    // when packed_weights is set (index layer * 7 + which; lm_head last).
    std::vector<std::vector<Word512>> packed_;
    [[nodiscard]] const std::vector<Word512>& packed_stream(std::size_t layer,
                                                            int which) const;

    // Scratch buffers reused across tokens, one lane per batch position (no
    // per-token allocation). Lane b of a [nb][dim] block starts at b * dim.
    std::vector<float> x_, xb_, q_, k_, v_, att_out_, gate_, up_, hidden_, down_,
        logits_;
    std::vector<float> scores_;   // [batch][n_heads][max_seq_len] attention scores
    // [batch][n_kv_heads][max_seq_len*head_dim] history scratch: dequant
    // target for the KV8 cache, gather target for paged float pages.
    std::vector<float> kv_deq_k_;
    std::vector<float> kv_deq_v_;
};

}  // namespace efld::model
