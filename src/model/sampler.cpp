#include "model/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace efld::model {

Sampler::Sampler(SamplerConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

std::int32_t Sampler::argmax(std::span<const float> logits) {
    check(!logits.empty(), "Sampler: empty logits");
    std::size_t best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i) {
        if (logits[i] > logits[best]) best = i;
    }
    return static_cast<std::int32_t>(best);
}

std::int32_t Sampler::sample(std::span<const float> logits) {
    check(!logits.empty(), "Sampler: empty logits");
    if (cfg_.temperature <= 0.0f) return argmax(logits);

    // Candidate list sorted by logit, truncated by top-k.
    std::vector<std::size_t> idx(logits.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return logits[a] > logits[b]; });
    std::size_t n = logits.size();
    if (cfg_.top_k > 0) n = std::min<std::size_t>(n, cfg_.top_k);

    // Softmax with temperature over the candidates.
    std::vector<double> probs(n);
    const double max_logit = static_cast<double>(logits[idx[0]]);
    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        probs[i] = std::exp((static_cast<double>(logits[idx[i]]) - max_logit) /
                            static_cast<double>(cfg_.temperature));
        denom += probs[i];
    }
    for (double& p : probs) p /= denom;

    // Nucleus truncation.
    if (cfg_.top_p < 1.0f) {
        double cum = 0.0;
        std::size_t cut = n;
        for (std::size_t i = 0; i < n; ++i) {
            cum += probs[i];
            if (cum >= static_cast<double>(cfg_.top_p)) {
                cut = i + 1;
                break;
            }
        }
        n = cut;
        double renorm = 0.0;
        for (std::size_t i = 0; i < n; ++i) renorm += probs[i];
        for (std::size_t i = 0; i < n; ++i) probs[i] /= renorm;
    }

    // Inverse-CDF draw.
    const double u = rng_.uniform();
    double cum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        cum += probs[i];
        if (u <= cum) return static_cast<std::int32_t>(idx[i]);
    }
    return static_cast<std::int32_t>(idx[n - 1]);
}

}  // namespace efld::model
