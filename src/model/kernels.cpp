#include "model/kernels.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace efld::model {

void rmsnorm(std::span<const float> x, std::span<const float> weight, float eps,
             std::span<float> out) {
    check(x.size() == weight.size() && x.size() == out.size(), "rmsnorm: size mismatch");
    const float rms = root_mean_square(x, eps);
    const float inv = 1.0f / rms;
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * inv * weight[i];
}

void rope_rotate(std::span<float> head_vec, std::size_t pos, float theta_base) {
    const std::size_t d = head_vec.size();
    check(d % 2 == 0, "rope_rotate: head_dim must be even");
    const std::size_t half = d / 2;
    for (std::size_t i = 0; i < half; ++i) {
        const float freq = std::pow(theta_base,
                                    -2.0f * static_cast<float>(i) / static_cast<float>(d));
        const float angle = static_cast<float>(pos) * freq;
        const float c = std::cos(angle);
        const float s = std::sin(angle);
        const float x0 = head_vec[i];
        const float x1 = head_vec[i + half];
        head_vec[i] = x0 * c - x1 * s;
        head_vec[i + half] = x1 * c + x0 * s;
    }
}

void softmax(std::span<const float> x, std::span<float> out) {
    check(x.size() == out.size(), "softmax: size mismatch");
    if (x.empty()) return;
    float m = x[0];
    for (const float v : x) m = std::max(m, v);
    float denom = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = std::exp(x[i] - m);
        denom += out[i];
    }
    const float inv = 1.0f / denom;
    for (float& v : out) v *= inv;
}

void silu_inplace(std::span<float> x) {
    for (float& v : x) v = silu(v);
}

void silu_gate(std::span<const float> gate, std::span<const float> up,
               std::span<float> out) {
    check(gate.size() == up.size() && gate.size() == out.size(), "silu_gate: size mismatch");
    for (std::size_t i = 0; i < gate.size(); ++i) out[i] = silu(gate[i]) * up[i];
}

void attention_head(std::span<const float> q, std::span<const float> keys,
                    std::span<const float> values, std::size_t ctx,
                    std::size_t head_dim, std::span<float> out) {
    check(q.size() == head_dim && out.size() == head_dim, "attention_head: bad head vectors");
    check(keys.size() >= ctx * head_dim && values.size() >= ctx * head_dim,
          "attention_head: KV history too small");
    check(ctx > 0, "attention_head: empty context");

    std::vector<float> scores(ctx);
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));
    for (std::size_t t = 0; t < ctx; ++t) {
        const float dot = dot_f32(q, keys.subspan(t * head_dim, head_dim));
        scores[t] = dot * inv_sqrt_d;
    }
    softmax_inplace(scores);

    for (std::size_t i = 0; i < head_dim; ++i) out[i] = 0.0f;
    for (std::size_t t = 0; t < ctx; ++t) {
        const auto v = values.subspan(t * head_dim, head_dim);
        const float p = scores[t];
        for (std::size_t i = 0; i < head_dim; ++i) out[i] += p * v[i];
    }
}

}  // namespace efld::model
