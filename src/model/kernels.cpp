#include "model/kernels.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/mathutil.hpp"

namespace efld::model {

void rmsnorm(std::span<const float> x, std::span<const float> weight, float eps,
             std::span<float> out) {
    check(x.size() == weight.size() && x.size() == out.size(), "rmsnorm: size mismatch");
    const float rms = root_mean_square(x, eps);
    const float inv = 1.0f / rms;
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * inv * weight[i];
}

namespace {

// Shared frequency recurrence: freq_0 = 1, freq_{i+1} = freq_i * base^(-2/d).
// Kept in double so the 64-step product stays well inside float precision;
// both the direct kernel and the table builder MUST use exactly this so a
// cached rotation is bit-for-bit identical to the direct one.
inline double rope_freq_ratio(std::size_t head_dim, float theta_base) {
    return std::pow(static_cast<double>(theta_base),
                    -2.0 / static_cast<double>(head_dim));
}

}  // namespace

void rope_rotate(std::span<float> head_vec, std::size_t pos, float theta_base) {
    const std::size_t d = head_vec.size();
    check(d % 2 == 0, "rope_rotate: head_dim must be even");
    const std::size_t half = d / 2;
    const double ratio = rope_freq_ratio(d, theta_base);
    double freq = 1.0;
    for (std::size_t i = 0; i < half; ++i) {
        const double angle = static_cast<double>(pos) * freq;
        const float c = static_cast<float>(std::cos(angle));
        const float s = static_cast<float>(std::sin(angle));
        const float x0 = head_vec[i];
        const float x1 = head_vec[i + half];
        head_vec[i] = x0 * c - x1 * s;
        head_vec[i + half] = x1 * c + x0 * s;
        freq *= ratio;
    }
}

void rope_angles(std::size_t head_dim, std::size_t pos, float theta_base,
                 std::span<float> cos_out, std::span<float> sin_out) {
    check(head_dim % 2 == 0, "rope_angles: head_dim must be even");
    const std::size_t half = head_dim / 2;
    check(cos_out.size() == half && sin_out.size() == half,
          "rope_angles: bad output spans");
    const double ratio = rope_freq_ratio(head_dim, theta_base);
    double freq = 1.0;
    for (std::size_t i = 0; i < half; ++i) {
        const double angle = static_cast<double>(pos) * freq;
        cos_out[i] = static_cast<float>(std::cos(angle));
        sin_out[i] = static_cast<float>(std::sin(angle));
        freq *= ratio;
    }
}

void rope_rotate_cached(std::span<float> head_vec, std::span<const float> cos_row,
                        std::span<const float> sin_row) {
    const std::size_t d = head_vec.size();
    check(d % 2 == 0, "rope_rotate_cached: head_dim must be even");
    const std::size_t half = d / 2;
    check(cos_row.size() == half && sin_row.size() == half,
          "rope_rotate_cached: table row mismatch");
    for (std::size_t i = 0; i < half; ++i) {
        const float c = cos_row[i];
        const float s = sin_row[i];
        const float x0 = head_vec[i];
        const float x1 = head_vec[i + half];
        head_vec[i] = x0 * c - x1 * s;
        head_vec[i + half] = x1 * c + x0 * s;
    }
}

RopeTable::RopeTable(std::size_t head_dim, std::size_t max_pos, float theta_base)
    : half_(head_dim / 2), max_pos_(max_pos) {
    check(head_dim % 2 == 0, "RopeTable: head_dim must be even");
    cos_.resize(max_pos * half_);
    sin_.resize(max_pos * half_);
    for (std::size_t pos = 0; pos < max_pos; ++pos) {
        rope_angles(head_dim, pos, theta_base,
                    std::span<float>(cos_).subspan(pos * half_, half_),
                    std::span<float>(sin_).subspan(pos * half_, half_));
    }
}

void softmax(std::span<const float> x, std::span<float> out) {
    check(x.size() == out.size(), "softmax: size mismatch");
    if (x.empty()) return;
    float m = x[0];
    for (const float v : x) m = std::max(m, v);
    float denom = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = std::exp(x[i] - m);
        denom += out[i];
    }
    const float inv = 1.0f / denom;
    for (float& v : out) v *= inv;
}

void silu_inplace(std::span<float> x) {
    for (float& v : x) v = silu(v);
}

void silu_gate(std::span<const float> gate, std::span<const float> up,
               std::span<float> out) {
    check(gate.size() == up.size() && gate.size() == out.size(), "silu_gate: size mismatch");
    for (std::size_t i = 0; i < gate.size(); ++i) out[i] = silu(gate[i]) * up[i];
}

void attention_head(std::span<const float> q, std::span<const float> keys,
                    std::span<const float> values, std::size_t ctx,
                    std::size_t head_dim, std::span<float> out,
                    std::span<float> scores_scratch) {
    check(q.size() == head_dim && out.size() == head_dim, "attention_head: bad head vectors");
    check(keys.size() >= ctx * head_dim && values.size() >= ctx * head_dim,
          "attention_head: KV history too small");
    check(ctx > 0, "attention_head: empty context");
    check(scores_scratch.size() >= ctx, "attention_head: scores scratch too small");

    std::span<float> scores = scores_scratch.first(ctx);
    const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));
    for (std::size_t t = 0; t < ctx; ++t) {
        const float dot = dot_f32(q, keys.subspan(t * head_dim, head_dim));
        scores[t] = dot * inv_sqrt_d;
    }
    softmax_inplace(scores);

    for (std::size_t i = 0; i < head_dim; ++i) out[i] = 0.0f;
    for (std::size_t t = 0; t < ctx; ++t) {
        const auto v = values.subspan(t * head_dim, head_dim);
        const float p = scores[t];
        for (std::size_t i = 0; i < head_dim; ++i) out[i] += p * v[i];
    }
}

void attention_head(std::span<const float> q, std::span<const float> keys,
                    std::span<const float> values, std::size_t ctx,
                    std::size_t head_dim, std::span<float> out) {
    std::vector<float> scores(ctx);
    attention_head(q, keys, values, ctx, head_dim, out, scores);
}

}  // namespace efld::model
