// Token samplers (the PS-side "Sample" box in Fig. 2).
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"

namespace efld::model {

struct SamplerConfig {
    float temperature = 1.0f;  // <= 0 means greedy
    std::uint32_t top_k = 0;   // 0 disables top-k
    float top_p = 1.0f;        // 1 disables nucleus sampling
    std::uint64_t seed = 0x5EED;
};

class Sampler {
public:
    explicit Sampler(SamplerConfig cfg);

    // Picks the next token id from raw logits.
    [[nodiscard]] std::int32_t sample(std::span<const float> logits);

    [[nodiscard]] static std::int32_t argmax(std::span<const float> logits);

private:
    SamplerConfig cfg_;
    Xoshiro256 rng_;
};

}  // namespace efld::model
