// Key/value caches: float (reference) and KV8-quantized (deployed form).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/config.hpp"
#include "quant/kvquant.hpp"

namespace efld::model {

// Float KV cache for the golden engine. Storage is head-major —
// [layer][head][token][head_dim] — so one head's whole history is a
// contiguous slab: decode-phase attention reads it as a zero-copy span
// instead of gathering a strided copy per head per token.
class KvCache {
public:
    explicit KvCache(const ModelConfig& cfg);

    void append(std::size_t layer, std::span<const float> k, std::span<const float> v);

    // Zero-copy history for one KV head: `len` contiguous rows of head_dim.
    [[nodiscard]] std::span<const float> keys_span(std::size_t layer, std::size_t kv_head,
                                                   std::size_t len) const;
    [[nodiscard]] std::span<const float> values_span(std::size_t layer, std::size_t kv_head,
                                                     std::size_t len) const;

    // Copying accessors kept for tests/tools that want owning history.
    [[nodiscard]] std::vector<float> keys_for_head(std::size_t layer, std::size_t kv_head,
                                                   std::size_t len) const;
    [[nodiscard]] std::vector<float> values_for_head(std::size_t layer, std::size_t kv_head,
                                                     std::size_t len) const;

    [[nodiscard]] std::size_t length() const noexcept { return len_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return cfg_.max_seq_len; }
    void reset() noexcept { len_ = 0; appended_this_pos_ = 0; }

private:
    [[nodiscard]] std::size_t head_slab(std::size_t kv_head) const noexcept {
        return kv_head * cfg_.max_seq_len * cfg_.head_dim();
    }

    ModelConfig cfg_;
    std::size_t len_ = 0;
    std::size_t appended_this_pos_ = 0;
    // [layer][(head * max_seq_len + token) * head_dim + element]
    std::vector<std::vector<float>> k_;
    std::vector<std::vector<float>> v_;
};

// KV8 cache mirroring the DDR-resident layout: one code vector + one
// scale-zero pack per (layer, token, kv_head, K|V).
class QuantizedKvCache {
public:
    // `kv_bits` selects the code grid (8 = deployed KV8; 4 = the KV4 variant
    // the paper rejects for <=13B models).
    explicit QuantizedKvCache(const ModelConfig& cfg, unsigned kv_bits = 8);

    // Quantizes and stores one token's K and V for a layer (per-head params).
    void append(std::size_t layer, std::span<const float> k, std::span<const float> v);

    // Dequantized history for one head (matches KvCache accessors).
    [[nodiscard]] std::vector<float> keys_for_head(std::size_t layer, std::size_t kv_head,
                                                   std::size_t len) const;
    [[nodiscard]] std::vector<float> values_for_head(std::size_t layer, std::size_t kv_head,
                                                     std::size_t len) const;

    // Allocation-free variants: dequantize `len` rows into caller scratch of
    // at least len * head_dim floats. Returns the filled prefix.
    std::span<const float> dequant_keys_into(std::size_t layer, std::size_t kv_head,
                                             std::size_t len, std::span<float> out) const;
    std::span<const float> dequant_values_into(std::size_t layer, std::size_t kv_head,
                                               std::size_t len, std::span<float> out) const;

    [[nodiscard]] quant::KvQuantParams key_params(std::size_t layer, std::size_t token,
                                                  std::size_t kv_head) const;
    [[nodiscard]] quant::KvQuantParams value_params(std::size_t layer, std::size_t token,
                                                    std::size_t kv_head) const;

    [[nodiscard]] std::size_t length() const noexcept { return len_; }
    void reset() noexcept { len_ = 0; appended_this_pos_ = 0; }

private:
    struct Entry {
        std::vector<std::uint8_t> codes;  // head_dim codes
        quant::KvQuantParams params;
    };

    [[nodiscard]] std::size_t slot(std::size_t layer, std::size_t token,
                                   std::size_t kv_head) const noexcept;

    ModelConfig cfg_;
    unsigned kv_bits_ = 8;
    std::size_t len_ = 0;
    std::size_t appended_this_pos_ = 0;
    std::vector<Entry> k_;  // layer-major [layer][token][head]
    std::vector<Entry> v_;
};

}  // namespace efld::model
