#include "model/tokenizer.hpp"

#include "common/check.hpp"

namespace efld::model {

void ByteTokenizer::add_merge(std::string text) {
    check(!text.empty(), "ByteTokenizer: empty merge");
    merges_.push_back(std::move(text));
}

std::vector<std::int32_t> ByteTokenizer::encode(std::string_view text, bool add_bos) const {
    std::vector<std::int32_t> ids;
    ids.reserve(text.size() + 1);
    if (add_bos) ids.push_back(kBos);
    std::size_t i = 0;
    while (i < text.size()) {
        // Greedy longest-match against the merge table.
        std::size_t best_len = 0;
        std::int32_t best_id = -1;
        for (std::size_t m = 0; m < merges_.size(); ++m) {
            const std::string& s = merges_[m];
            if (s.size() > best_len && text.substr(i, s.size()) == s) {
                best_len = s.size();
                best_id = kByteBase + 256 + static_cast<std::int32_t>(m);
            }
        }
        if (best_id >= 0) {
            ids.push_back(best_id);
            i += best_len;
        } else {
            ids.push_back(kByteBase + static_cast<std::uint8_t>(text[i]));
            ++i;
        }
    }
    return ids;
}

std::string ByteTokenizer::decode_token(std::int32_t id) const {
    if (id < 0) return "";
    if (id < kByteBase) return "";  // specials render as nothing
    if (id < kByteBase + 256) {
        return std::string(1, static_cast<char>(id - kByteBase));
    }
    const std::size_t m = static_cast<std::size_t>(id - kByteBase - 256);
    // Models may have a larger vocab than the tokenizer's table (padding
    // rows); those ids render as U+FFFD, as real detokenizers do.
    if (m >= merges_.size()) return "\xEF\xBF\xBD";
    return merges_[m];
}

std::string ByteTokenizer::decode(const std::vector<std::int32_t>& ids) const {
    std::string out;
    for (const std::int32_t id : ids) out += decode_token(id);
    return out;
}

}  // namespace efld::model
