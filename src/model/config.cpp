#include "model/config.hpp"

#include "common/check.hpp"

namespace efld::model {

std::uint64_t ModelConfig::attn_params_per_layer() const noexcept {
    // Q and O are [dim, dim]; K and V are [kv_dim, dim] (GQA-aware).
    return 2 * dim * dim + 2 * kv_dim() * dim;
}

std::uint64_t ModelConfig::mlp_params_per_layer() const noexcept {
    // gate, up: [hidden, dim]; down: [dim, hidden].
    return 3 * dim * hidden_dim;
}

std::uint64_t ModelConfig::norm_params() const noexcept {
    // Two RMSNorm vectors per layer plus the final norm.
    return n_layers * 2 * dim + dim;
}

std::uint64_t ModelConfig::total_params() const noexcept {
    return embedding_params() + lm_head_params() + layer_params() + norm_params();
}

ModelConfig ModelConfig::llama2_7b() {
    ModelConfig c;
    c.name = "LLaMA2-7B";
    c.dim = 4096;
    c.n_layers = 32;
    c.n_heads = 32;
    c.n_kv_heads = 32;
    c.hidden_dim = 11008;
    c.vocab_size = 32000;
    c.max_seq_len = 1024;  // the paper's KV reservation on the KV260
    return c;
}

ModelConfig ModelConfig::tinyllama_1_1b() {
    ModelConfig c;
    c.name = "TinyLlama-1.1B";
    c.dim = 2048;
    c.n_layers = 22;
    c.n_heads = 32;
    c.n_kv_heads = 4;
    c.hidden_dim = 5632;
    c.vocab_size = 32000;
    c.max_seq_len = 1024;
    return c;
}

ModelConfig ModelConfig::gpt2_1_5b_geometry() {
    // GPT-2 XL geometry mapped onto the LLaMA parameter calculator; used only
    // for byte counts in the Table II comparison (DFX row).
    ModelConfig c;
    c.name = "GPT2-1.5B(geom)";
    c.dim = 1600;
    c.n_layers = 48;
    c.n_heads = 25;
    c.n_kv_heads = 25;
    // GPT-2 ties its embedding/head and uses a 4d MLP; this hidden size makes
    // the LLaMA-style calculator land on the same ~1.56B total byte count.
    c.hidden_dim = 3968;
    c.vocab_size = 50257;
    return c;
}

ModelConfig ModelConfig::chatglm_6b_geometry() {
    ModelConfig c;
    c.name = "ChatGLM-6B(geom)";
    c.dim = 4096;
    c.n_layers = 28;
    c.n_heads = 32;
    c.n_kv_heads = 32;
    c.hidden_dim = 10922;  // tuned so total_params ~= 6.2B
    c.vocab_size = 65024;
    return c;
}

ModelConfig ModelConfig::tiny_512() {
    ModelConfig c;
    c.name = "tiny-512";
    c.dim = 512;
    c.n_layers = 4;
    c.n_heads = 4;
    c.n_kv_heads = 4;
    c.hidden_dim = 1408;  // multiple of 128 for the bus format
    c.vocab_size = 512;
    c.max_seq_len = 128;
    return c;
}

ModelConfig ModelConfig::micro_256() {
    ModelConfig c;
    c.name = "micro-256";
    c.dim = 256;
    c.n_layers = 2;
    c.n_heads = 2;
    c.n_kv_heads = 2;
    c.hidden_dim = 640;
    c.vocab_size = 384;
    c.max_seq_len = 64;
    return c;
}

ModelFootprint compute_footprint(const ModelConfig& cfg, const QuantScheme& scheme) {
    ModelFootprint f;
    const double bpw = scheme.bytes_per_weight();

    f.embedding_bytes = cfg.embedding_params() * (scheme.embedding_fp16 ? 2 : 1);
    f.layer_weight_bytes =
        static_cast<std::uint64_t>(static_cast<double>(cfg.layer_params()) * bpw);
    f.lm_head_bytes = scheme.lm_head_quantized
                          ? static_cast<std::uint64_t>(
                                static_cast<double>(cfg.lm_head_params()) * bpw)
                          : cfg.lm_head_params() * 2;
    f.norm_bytes = cfg.norm_params() * 2;  // always fp16

    const std::uint64_t kv_elem_bytes = scheme.kv_bits / 8;
    f.kv_cache_bytes = 2 * cfg.n_layers * cfg.kv_dim() * cfg.max_seq_len * kv_elem_bytes;
    f.kv_pack_bytes = (scheme.kv_bits < 16)
                          ? 2 * cfg.n_layers * cfg.n_kv_heads * cfg.max_seq_len * 4
                          : 0;
    return f;
}

DecodeTraffic decode_traffic(const ModelConfig& cfg, const QuantScheme& scheme,
                             std::uint64_t ctx) {
    check(ctx <= cfg.max_seq_len, "decode_traffic: ctx exceeds max_seq_len");
    const double bpw = scheme.bytes_per_weight();
    DecodeTraffic t;

    // All projection weights + lm_head stream through once per token.
    t.weight_read_bytes =
        static_cast<std::uint64_t>(static_cast<double>(cfg.layer_params()) * bpw);
    t.weight_read_bytes += scheme.lm_head_quantized
                               ? static_cast<std::uint64_t>(
                                     static_cast<double>(cfg.lm_head_params()) * bpw)
                               : cfg.lm_head_params() * 2;
    t.weight_read_bytes += cfg.norm_params() * 2;

    // KV history: the fused pipeline scans each KV head's history once per
    // *query* head (a 1024-token per-head history is far too large to cache
    // on chip), so GQA models re-read shared KV heads heads_per_kv times.
    // The current token's K/V is written once per KV head.
    const std::uint64_t kv_elem_bytes = scheme.kv_bits / 8;
    const std::uint64_t read_codes =
        2 * cfg.n_layers * cfg.n_heads * cfg.head_dim() * kv_elem_bytes;
    const std::uint64_t read_packs =
        (scheme.kv_bits < 16) ? 2 * cfg.n_layers * cfg.n_heads * 4 : 0;
    t.kv_read_bytes = ctx * (read_codes + read_packs);

    const std::uint64_t write_codes = 2 * cfg.n_layers * cfg.kv_dim() * kv_elem_bytes;
    const std::uint64_t write_packs =
        (scheme.kv_bits < 16) ? 2 * cfg.n_layers * cfg.n_kv_heads * 4 : 0;
    t.kv_write_bytes = write_codes + write_packs;

    t.embedding_read_bytes = cfg.dim * (scheme.embedding_fp16 ? 2 : 1);
    return t;
}

double theoretical_tokens_per_s(const ModelConfig& cfg, const QuantScheme& scheme,
                                double bandwidth_bytes_per_s) {
    const ModelFootprint f = compute_footprint(cfg, scheme);
    return bandwidth_bytes_per_s / static_cast<double>(f.weight_bytes());
}

}  // namespace efld::model
