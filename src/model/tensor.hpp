// Minimal owning row-major matrix / vector types for the reference model.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace efld::model {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] float& at(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
        return std::span<float>(data_).subspan(r * cols_, cols_);
    }
    [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
        return std::span<const float>(data_).subspan(r * cols_, cols_);
    }

    [[nodiscard]] std::span<float> flat() noexcept { return data_; }
    [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

using Vector = std::vector<float>;

// y = W x  (GEMV, float32 golden path).
void gemv(const Matrix& w, std::span<const float> x, std::span<float> y);

// Row range [row_begin, row_end) of the same GEMV — the unit a worker pool
// partitions. gemv() and every threaded caller go through this one kernel so
// results stay bit-for-bit identical for any row partitioning.
void gemv_rows(const Matrix& w, std::span<const float> x, std::span<float> y,
               std::size_t row_begin, std::size_t row_end);

}  // namespace efld::model
