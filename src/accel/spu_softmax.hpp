// Softmax submodule (Fig. 5C4): numerically stable three-pass variant.
//
// Pass 1 finds the running maximum m, pass 2 accumulates d = sum(e^(x_i - m)),
// pass 3 emits s_i = e^(x_i - m) / d. The exponential uses the shared
// HwExp ROM. In the fused attention pipeline the three passes hide behind the
// value projection (§V.A), so they cost no wall-clock cycles there.
#pragma once

#include <span>

#include "accel/hw_exp.hpp"
#include "accel/spu_rope.hpp"  // SpuCycles

namespace efld::accel {

class SpuSoftmax {
public:
    explicit SpuSoftmax(const HwExp& exp_unit) : exp_(exp_unit) {}

    SpuCycles run(std::span<const Fp16> x, std::span<Fp16> out) const;

private:
    const HwExp& exp_;
};

}  // namespace efld::accel
