// The DDR-resident model image the accelerator consumes.
//
// Every projection matrix is stored as a Fig. 4A interleaved bus-word stream
// (ready for sequential burst transfer); the embedding table and norm vectors
// stay fp16. This is what the offline converter produces from an AWQ
// checkpoint and what the bare-metal loader copies from the SD card.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitpack.hpp"
#include "model/weights.hpp"

namespace efld::accel {

struct PackedMatrix {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<Word512> stream;

    [[nodiscard]] std::uint64_t stream_bytes() const noexcept {
        return static_cast<std::uint64_t>(stream.size()) * kBusBytes;
    }
    [[nodiscard]] std::size_t num_groups() const noexcept {
        return rows * (cols / kNibblesPerWord);
    }
};

struct PackedLayer {
    PackedMatrix wq, wk, wv, wo, w_gate, w_up, w_down;
    std::vector<Fp16> attn_norm, mlp_norm;
};

struct PackedModel {
    model::ModelConfig config;
    std::vector<Fp16> embedding;  // row-major [vocab, dim]
    std::vector<PackedLayer> layers;
    std::vector<Fp16> final_norm;
    PackedMatrix lm_head;

    [[nodiscard]] static PackedModel build(const model::QuantizedModelWeights& qw);

    [[nodiscard]] std::uint64_t weight_stream_bytes() const noexcept;
    [[nodiscard]] std::uint64_t embedding_bytes() const noexcept {
        return static_cast<std::uint64_t>(embedding.size()) * 2;
    }
};

}  // namespace efld::accel
