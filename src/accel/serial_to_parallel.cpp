#include "accel/serial_to_parallel.hpp"

#include "common/check.hpp"

namespace efld::accel {

std::optional<Word512> SerialToParallel::push_byte(std::uint8_t b) {
    word_.set_byte(fill_bytes_, b);
    ++fill_bytes_;
    if (fill_bytes_ == kBusBytes) {
        Word512 full = word_;
        word_ = Word512{};
        fill_bytes_ = 0;
        ++words_emitted_;
        return full;
    }
    return std::nullopt;
}

std::optional<Word512> SerialToParallel::push_half(Fp16 h) {
    check(fill_bytes_ % 2 == 0, "SerialToParallel: mixing byte and half lanes mid-word");
    word_.set_half_bits(fill_bytes_ / 2, h.bits());
    fill_bytes_ += 2;
    if (fill_bytes_ == kBusBytes) {
        Word512 full = word_;
        word_ = Word512{};
        fill_bytes_ = 0;
        ++words_emitted_;
        return full;
    }
    return std::nullopt;
}

std::optional<Word512> SerialToParallel::drain() {
    if (fill_bytes_ == 0) return std::nullopt;
    Word512 partial = word_;
    word_ = Word512{};
    fill_bytes_ = 0;
    ++words_emitted_;
    return partial;
}

}  // namespace efld::accel
