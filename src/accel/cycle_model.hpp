// Decode-phase cycle model: walks the fused pipeline schedule (Fig. 3) over
// the memory-system substrate and reports per-token latency.
//
// Decoding is bandwidth-bound: each operation's wall time is the max of its
// weight/KV stream time (from memsim) and its VPU occupancy. Miscellaneous
// SPU work (RoPE, RMSNorm, softmax, SiLU, online quant) is *hidden* inside
// the dense streams in the paper's fine-grained head-wise pipeline; a
// DFX-style coarse pipeline exposes it serially. Both schedules are modeled
// so the Fig. 3 mechanism is measurable.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "accel/mcu.hpp"
#include "memsim/memory_system.hpp"
#include "model/config.hpp"

namespace efld::accel {

struct AccelConfig {
    double clock_mhz = 300.0;  // PL clock (the paper closes timing at 300 MHz)
    std::size_t vpu_lanes = 128;

    // Schedule: true = paper's fine-grained head-wise fusion; false = coarse
    // stage-by-stage pipeline (DFX-style baseline).
    bool fine_grained_fusion = true;

    // Per-operation FSM/datamover startup that cannot overlap computation.
    unsigned op_start_overhead_clk = 32;
    // Head/layer switch bubbles (operand FIFO turnaround).
    unsigned head_overhead_clk = 16;
    unsigned layer_overhead_clk = 128;
    // Per-token PS turnaround: AXI-Lite command, sampling, next-token sync.
    unsigned token_overhead_clk = 3000;

    // Paged KV streaming: > 0 prices each session's KV history as one
    // descriptor per kv_page_tokens-token page instead of one burst per
    // history — the datamover cost of the kvpool block tables. Each page is a
    // separate transaction paying its own FSM start, so paging trades a
    // little decode latency for the capacity headroom the pool buys. Byte
    // counts are unchanged when the page is a multiple of the 16-token pack
    // word. 0 = contiguous per-session KV regions.
    std::size_t kv_page_tokens = 0;

    [[nodiscard]] double clk_ns() const noexcept { return 1000.0 / clock_mhz; }
};

struct OpTiming {
    std::string name;
    double mem_ns = 0.0;      // stream time from the memory system
    double compute_ns = 0.0;  // VPU occupancy
    double spu_ns = 0.0;      // misc work attached to this op
    bool spu_hidden = false;  // hidden inside the dense stream?
    double total_ns = 0.0;
};

struct TokenTiming {
    double total_ns = 0.0;
    double mem_bound_ns = 0.0;     // sum of max(mem, compute) terms
    double spu_exposed_ns = 0.0;   // misc work that was NOT hidden
    double overhead_ns = 0.0;      // FSM/head/layer/token bubbles
    std::uint64_t weight_bytes = 0;
    std::uint64_t kv_read_bytes = 0;
    std::uint64_t kv_write_bytes = 0;
    std::vector<OpTiming> ops;     // populated when collect_ops is set

    [[nodiscard]] double tokens_per_s() const noexcept {
        return total_ns > 0.0 ? 1e9 / total_ns : 0.0;
    }
};

struct GenerationTiming {
    double total_ns = 0.0;
    std::size_t tokens = 0;

    [[nodiscard]] double tokens_per_s() const noexcept {
        return total_ns > 0.0 ? static_cast<double>(tokens) * 1e9 / total_ns : 0.0;
    }
};

// Prefill-phase timing (Fig. 2A). The paper's vector engine trades prefill
// performance for decode PPA: prompt tokens are processed in on-chip tiles of
// `tile_tokens`, streaming the weights once per tile but occupying the
// 128-lane VPU for `tile_tokens` cycles per weight group — compute-bound for
// any tile larger than one token.
struct PrefillTiming {
    double total_ns = 0.0;  // time to first token (TTFT)
    std::size_t prompt_tokens = 0;
    double compute_ns = 0.0;     // VPU-occupancy portion
    double mem_ns = 0.0;         // weight/KV stream portion
    std::uint64_t weight_bytes = 0;

    [[nodiscard]] double tokens_per_s() const noexcept {
        return total_ns > 0.0
                   ? static_cast<double>(prompt_tokens) * 1e9 / total_ns
                   : 0.0;
    }
    [[nodiscard]] bool compute_bound() const noexcept { return compute_ns > mem_ns; }
};

class DecodeCycleModel {
public:
    DecodeCycleModel(const model::ModelConfig& cfg, const model::QuantScheme& scheme,
                     const AccelConfig& accel,
                     const memsim::MemorySystemConfig& mem =
                         memsim::MemorySystemConfig::kv260());

    // Latency of decoding one token with `ctx` cached tokens. Exactly
    // batch_timing({ctx}).
    TokenTiming token_timing(std::size_t ctx, bool collect_ops = false);

    // Latency of ONE batched decode step advancing ctxs.size() concurrent
    // sessions, lane b holding ctxs[b] cached tokens. This is the serving
    // counterpart of token_timing and the device-side mirror of the host's
    // skinny GEMM: each weight stream crosses the bus ONCE while the VPU runs
    // one dot per lane per group (compute scales with the batch, weight
    // traffic does not — same trade as prefill_timing's tiles); KV streams,
    // writebacks, and SPU work are per-session, each lane priced at its own
    // context length. Because the paper balances the VPU width to the stream
    // rate, dense ops flip compute-bound for batch >= 2 — the serving gain on
    // unmodified KV260 hardware comes from the once-per-step overheads
    // (FSM starts, head/layer bubbles, PS token turnaround) and the shared
    // streams, and tokens/s still rises monotonically with the batch.
    // batch_timing({ctx}) is bit-identical to token_timing(ctx).
    TokenTiming batch_timing(std::span<const std::size_t> ctxs,
                             bool collect_ops = false);

    // Total time for `n_tokens` decode steps starting after `prompt_len`
    // cached tokens (each step's context grows by one).
    GenerationTiming generate_timing(std::size_t prompt_len, std::size_t n_tokens);

    // TTFT for a `prompt_len`-token prompt with `tile_tokens` processed per
    // weight pass (limited by on-chip activation storage; 16 on the KV260).
    PrefillTiming prefill_timing(std::size_t prompt_len, std::size_t tile_tokens = 16);

    // TTFT when the first `covered_tokens` of the prompt were adopted from a
    // shared prefix: their KV is already resident, so the covered span costs
    // NO weight-walk tiles, attention passes, or KV writebacks — only the
    // uncovered tail is prefilled (its attention still streams the full
    // growing history, covered pages included). covered_tokens must leave at
    // least one token to feed (the last prompt token produces the first
    // logits); 0 degenerates to prefill_timing.
    PrefillTiming prefill_timing_shared(std::size_t prompt_len,
                                        std::size_t covered_tokens,
                                        std::size_t tile_tokens = 16);

    // Hypothetical matrix-engine prefill (weights streamed once, a
    // `macs_per_cycle`-wide systolic array reusing them) — the comparison
    // point behind Chen et al.'s prefill/decode asymmetry analysis.
    [[nodiscard]] double matrix_engine_prefill_ns(std::size_t prompt_len,
                                                  double macs_per_cycle);

    // Decode speed as a fraction of the paper's theoretical bandwidth limit
    // (bandwidth / (projection+head params at 4 bits) — Table II footnote 1).
    [[nodiscard]] double bandwidth_utilization(std::size_t ctx);

    [[nodiscard]] const Mcu& mcu() const noexcept { return mcu_; }
    [[nodiscard]] const AccelConfig& accel_config() const noexcept { return accel_; }
    [[nodiscard]] memsim::MemorySystem& memory() noexcept { return *mem_; }

private:
    struct OpCtx {
        TokenTiming* out;
        bool collect;
    };

    // Records one dense op: stream transaction + VPU cycles + attached SPU ns.
    void dense_op(OpCtx& octx, const std::string& name, const memsim::Transaction& txn,
                  std::uint64_t vpu_cycles, double spu_ns);
    void spu_only_op(OpCtx& octx, const std::string& name, double spu_ns);

    // Shared tile walk behind both prefill entry points: prefills tokens
    // [start, prompt_len) (positions below `start` are already resident).
    PrefillTiming prefill_span(std::size_t start, std::size_t prompt_len,
                               std::size_t tile_tokens);

    model::ModelConfig cfg_;
    model::QuantScheme scheme_;
    AccelConfig accel_;
    Mcu mcu_;
    std::unique_ptr<memsim::MemorySystem> mem_;
};

}  // namespace efld::accel
