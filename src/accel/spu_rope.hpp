// RoPE submodule (Fig. 5C1): rotator + sin/cos generator + address generator.
//
// The sin/cos generator stores 4096 points of one quarter cycle of a sine
// wave in ROM; full-circle values come from quadrant folding. The address
// generator holds an inverse-frequency ROM (10000^(-i/4096) for even i) and
// multiplies by the token position to produce the rotation angle. The
// rotator caches the first half of the head vector and emits rotated pairs
// on the fly as the second half streams past — which is why RoPE costs no
// extra cycles in the fused pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/fp16.hpp"

namespace efld::accel {

// Quarter-wave sine ROM with quadrant folding.
class SinCosRom {
public:
    static constexpr std::size_t kPoints = 4096;  // quarter-cycle samples

    SinCosRom();

    // sin/cos of `angle` (radians, any magnitude) via table lookup.
    [[nodiscard]] Fp16 sin(double angle) const noexcept;
    [[nodiscard]] Fp16 cos(double angle) const noexcept;

    [[nodiscard]] static constexpr std::size_t rom_bits() noexcept { return kPoints * 16; }

private:
    [[nodiscard]] Fp16 lookup_quarter(std::size_t idx) const noexcept { return rom_[idx]; }
    [[nodiscard]] Fp16 folded(double angle, bool as_cos) const noexcept;

    std::vector<Fp16> rom_;
};

// Inverse-frequency ROM: theta_base^(-i/kTable) for even i — the generic
// table covering any head_dim up to kTable.
class InvFreqRom {
public:
    static constexpr std::size_t kTable = 4096;

    explicit InvFreqRom(float theta_base = 10000.0f);

    // Frequency for rotation pair j of a head of dimension `head_dim`:
    // theta_base^(-2j/head_dim).
    [[nodiscard]] double freq(std::size_t pair_index, std::size_t head_dim) const;

    [[nodiscard]] static constexpr std::size_t rom_bits() noexcept {
        return (kTable / 2) * 32;  // fp32 resolution entries
    }

private:
    float theta_base_;
    std::vector<double> rom_;  // index i/2 -> theta^(-i/kTable), even i
};

struct SpuCycles {
    std::uint64_t cycles = 0;
};

// The rotator: applies RoPE to one head vector in place (rotate-half
// pairing, matching model::rope_rotate).
class SpuRope {
public:
    explicit SpuRope(float theta_base = 10000.0f);

    SpuCycles run(std::span<Fp16> head_vec, std::size_t pos) const;

    [[nodiscard]] const SinCosRom& sincos() const noexcept { return sincos_; }
    [[nodiscard]] const InvFreqRom& invfreq() const noexcept { return invfreq_; }

private:
    SinCosRom sincos_;
    InvFreqRom invfreq_;
};

}  // namespace efld::accel
