// Vector Processing Unit: on-the-fly dequantization + 128-lane FP16 dot
// engine (Fig. 5B).
//
// The VPU is deliberately a *vector* engine, not a matrix engine: during
// decoding every weight is used exactly once, so compute only needs to keep
// pace with the 512-bit weight stream — 128 dequantized fp16 values per
// clock. It consists of the dequant stage (512b -> 2048b), 128 fp16
// multipliers, a binary adder tree, a scaling multiplier and an accumulator.
// All arithmetic is correctly rounded fp16, so results are bit-comparable to
// an RTL FP16 datapath with the same reduction order.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/bitpack.hpp"
#include "common/fp16.hpp"
#include "quant/kvquant.hpp"
#include "quant/weight_format.hpp"

namespace efld::accel {

inline constexpr std::size_t kVpuLanes = 128;

// 512b weight word + group scale/zero -> 128 fp16 lanes.
class DequantUnit {
public:
    [[nodiscard]] static std::array<Fp16, kVpuLanes> run(const Word512& word, Fp16 scale,
                                                         std::uint8_t zero) noexcept;

    // Same dequantization over already-demultiplexed 4-bit codes.
    [[nodiscard]] static std::array<Fp16, kVpuLanes> run(
        std::span<const std::uint8_t> codes, Fp16 scale, std::uint8_t zero) noexcept;

    // KV8 variant: 64 codes per word (8-bit lanes); `count` trims the tail.
    [[nodiscard]] static std::vector<Fp16> run_kv(std::span<const std::uint8_t> codes,
                                                  quant::KvQuantParams params);
};

class DotEngine {
public:
    // Binary-tree fp16 reduction (the hardware adder tree). Length need not
    // be a power of two; odd elements pass through a stage unchanged.
    [[nodiscard]] static Fp16 tree_sum(std::span<const Fp16> vals) noexcept;

    // One cycle of the engine: elementwise multiply + tree reduce.
    [[nodiscard]] static Fp16 dot128(std::span<const Fp16> a, std::span<const Fp16> b) noexcept;

    // Accumulating dot over arbitrary-length fp16 vectors, processed in
    // 128-lane waves exactly as the hardware would.
    [[nodiscard]] static Fp16 dot(std::span<const Fp16> a, std::span<const Fp16> b) noexcept;

    // Full GEMV over a packed weight stream: y[rows] = W x.
    // Walks the Fig. 4A stream through a WeightStreamDecoder, dequantizes
    // group by group and accumulates per output row in fp16.
    static void gemv(std::span<const Word512> stream, std::size_t rows, std::size_t cols,
                     std::span<const Fp16> x, std::span<Fp16> y);

    // Cycle cost of that GEMV: one group per clock, fully pipelined.
    [[nodiscard]] static std::uint64_t gemv_cycles(std::size_t rows, std::size_t cols) noexcept {
        return rows * (cols / kVpuLanes);
    }
};

// Helpers bridging float vectors and fp16 lanes.
[[nodiscard]] std::vector<Fp16> to_fp16(std::span<const float> x);
[[nodiscard]] std::vector<float> to_float(std::span<const Fp16> x);

}  // namespace efld::accel
