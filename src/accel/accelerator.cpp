#include "accel/accelerator.hpp"

#include <cmath>

#include "common/check.hpp"

namespace efld::accel {

Accelerator::Accelerator(const PackedModel& m, AcceleratorOptions opts)
    : model_(&m),
      opts_(opts),
      timing_(m.config, model::QuantScheme::w4a16_kv8(), opts.accel, opts.mem),
      rope_(m.config.rope_theta),
      softmax_(exp_),
      silu_(exp_),
      sz_fifo_(m.config.n_layers, m.config.n_kv_heads),
      k_cache_(m.config.n_layers * m.config.max_seq_len * m.config.n_kv_heads),
      v_cache_(k_cache_.size()) {}

void Accelerator::reset() {
    pos_ = 0;
    sz_fifo_ = quant::ScaleZeroFifo(model_->config.n_layers, model_->config.n_kv_heads);
    for (auto& e : k_cache_) e = KvEntry{};
    for (auto& e : v_cache_) e = KvEntry{};
}

std::size_t Accelerator::kv_slot(std::size_t layer, std::size_t token,
                                 std::size_t kv_head) const noexcept {
    return (layer * model_->config.max_seq_len + token) * model_->config.n_kv_heads +
           kv_head;
}

void Accelerator::attention(std::size_t layer, std::vector<Fp16>& x) {
    const model::ModelConfig& cfg = model_->config;
    const PackedLayer& lw = model_->layers[layer];
    const std::size_t hd = cfg.head_dim();
    const std::size_t heads_per_kv = cfg.n_heads / cfg.n_kv_heads;

    // Layer-entry RMSNorm (square sum computed by the DOT engine side-path).
    std::vector<Fp16> xn(cfg.dim);
    rms_.run(x, lw.attn_norm, cfg.rms_eps, xn, SpuRmsNorm::square_sum(x));

    // Projections from the interleaved weight streams.
    std::vector<Fp16> q(cfg.dim), k(cfg.kv_dim()), v(cfg.kv_dim());
    DotEngine::gemv(lw.wq.stream, cfg.dim, cfg.dim, xn, q);
    DotEngine::gemv(lw.wk.stream, cfg.kv_dim(), cfg.dim, xn, k);
    DotEngine::gemv(lw.wv.stream, cfg.kv_dim(), cfg.dim, xn, v);

    // On-the-fly RoPE.
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
        rope_.run(std::span<Fp16>(q).subspan(h * hd, hd), pos_);
    }
    for (std::size_t h = 0; h < cfg.n_kv_heads; ++h) {
        rope_.run(std::span<Fp16>(k).subspan(h * hd, hd), pos_);
    }

    // Online KV8 quantization; packs go through the Fig. 4B FIFO, codes
    // through the serial-to-parallel unit (to DDR on the real device).
    for (std::size_t h = 0; h < cfg.n_kv_heads; ++h) {
        SpuQuant::Result qk = kv_quant_.run(std::span<const Fp16>(k).subspan(h * hd, hd));
        SpuQuant::Result qv = kv_quant_.run(std::span<const Fp16>(v).subspan(h * hd, hd));
        for (const std::uint8_t c : qk.codes) (void)s2p_.push_byte(c);
        for (const std::uint8_t c : qv.codes) (void)s2p_.push_byte(c);
        (void)sz_fifo_.append(layer, h, false, pos_, qk.params);
        (void)sz_fifo_.append(layer, h, true, pos_, qv.params);
        k_cache_[kv_slot(layer, pos_, h)] = {std::move(qk.codes), qk.params};
        v_cache_[kv_slot(layer, pos_, h)] = {std::move(qv.codes), qv.params};
    }

    // Head-wise attention: history from the quantized cache, the current
    // token's K/V used pre-quantization (they are still on chip — §V.A).
    const Fp16 inv_sqrt_d = Fp16::from_float(1.0f / std::sqrt(static_cast<float>(hd)));
    std::vector<Fp16> att_out(cfg.dim);
    std::vector<Fp16> scores(pos_ + 1);
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
        const std::size_t kvh = h / heads_per_kv;
        const std::span<const Fp16> qh(q.data() + h * hd, hd);

        for (std::size_t t = 0; t < pos_; ++t) {
            const KvEntry& e = k_cache_[kv_slot(layer, t, kvh)];
            const std::vector<Fp16> kt = DequantUnit::run_kv(e.codes, e.params);
            scores[t] = DotEngine::dot(qh, kt) * inv_sqrt_d;
        }
        scores[pos_] =
            DotEngine::dot(qh, std::span<const Fp16>(k).subspan(kvh * hd, hd)) *
            inv_sqrt_d;

        std::vector<Fp16> probs(pos_ + 1);
        softmax_.run(scores, probs);

        // Scaled-dot accumulation of values (fp16 MACs, one value row at a
        // time as the history streams in).
        std::span<Fp16> out(att_out.data() + h * hd, hd);
        for (auto& o : out) o = Fp16::zero();
        for (std::size_t t = 0; t < pos_; ++t) {
            const KvEntry& e = v_cache_[kv_slot(layer, t, kvh)];
            const std::vector<Fp16> vt = DequantUnit::run_kv(e.codes, e.params);
            for (std::size_t i = 0; i < hd; ++i) out[i] = out[i] + probs[t] * vt[i];
        }
        for (std::size_t i = 0; i < hd; ++i) {
            out[i] = out[i] + probs[pos_] * v[kvh * hd + i];
        }
    }

    // Output projection + residual add (fused with the square-sum pass).
    std::vector<Fp16> o(cfg.dim);
    DotEngine::gemv(lw.wo.stream, cfg.dim, cfg.dim, att_out, o);
    for (std::size_t i = 0; i < cfg.dim; ++i) x[i] = x[i] + o[i];
}

void Accelerator::mlp(std::size_t layer, std::vector<Fp16>& x) {
    const model::ModelConfig& cfg = model_->config;
    const PackedLayer& lw = model_->layers[layer];

    std::vector<Fp16> xn(cfg.dim);
    rms_.run(x, lw.mlp_norm, cfg.rms_eps, xn, SpuRmsNorm::square_sum(x));

    std::vector<Fp16> gate(cfg.hidden_dim), up(cfg.hidden_dim), hidden(cfg.hidden_dim);
    DotEngine::gemv(lw.w_gate.stream, cfg.hidden_dim, cfg.dim, xn, gate);
    DotEngine::gemv(lw.w_up.stream, cfg.hidden_dim, cfg.dim, xn, up);
    silu_.run(gate, up, hidden);

    std::vector<Fp16> down(cfg.dim);
    DotEngine::gemv(lw.w_down.stream, cfg.dim, cfg.hidden_dim, hidden, down);
    for (std::size_t i = 0; i < cfg.dim; ++i) x[i] = x[i] + down[i];
}

StepResult Accelerator::step(std::int32_t token) {
    const model::ModelConfig& cfg = model_->config;
    check(token >= 0 && static_cast<std::uint64_t>(token) < cfg.vocab_size,
          "Accelerator: token out of range");
    check(pos_ < cfg.max_seq_len, "Accelerator: KV reservation exhausted");

    // Embedding row (fp16 in DDR).
    std::vector<Fp16> x(cfg.dim);
    const std::size_t base = static_cast<std::size_t>(token) * cfg.dim;
    for (std::size_t i = 0; i < cfg.dim; ++i) x[i] = model_->embedding[base + i];

    for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
        attention(layer, x);
        mlp(layer, x);
    }

    std::vector<Fp16> xn(cfg.dim);
    rms_.run(x, model_->final_norm, cfg.rms_eps, xn, SpuRmsNorm::square_sum(x));
    std::vector<Fp16> logits_h(cfg.vocab_size);
    DotEngine::gemv(model_->lm_head.stream, cfg.vocab_size, cfg.dim, xn, logits_h);

    StepResult r;
    r.logits = to_float(logits_h);
    if (opts_.collect_timing) {
        r.timing = timing_.token_timing(pos_);
    }
    ++pos_;
    return r;
}

GenerationResult Accelerator::generate(std::span<const std::int32_t> prompt,
                                       std::size_t max_new, model::Sampler& sampler,
                                       std::int32_t eos) {
    check(!prompt.empty(), "Accelerator: empty prompt");
    GenerationResult g;

    StepResult last;
    for (const std::int32_t t : prompt) last = step(t);

    // Same attribution rule as InferenceSession::generate: a token is billed
    // the decode step that consumes it, so total_ns covers exactly the decode
    // steps executed here (prefill is TTFT, not decode time).
    for (std::size_t i = 0; i < max_new && pos_ < model_->config.max_seq_len; ++i) {
        const std::int32_t next = sampler.sample(last.logits);
        g.tokens.push_back(next);
        if (next == eos) break;
        last = step(next);
        g.total_ns += last.timing.total_ns;
    }
    return g;
}

}  // namespace efld::accel
