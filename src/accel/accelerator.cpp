#include "accel/accelerator.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "obs/profiler.hpp"

namespace efld::accel {

Accelerator::Accelerator(const PackedModel& m, AcceleratorOptions opts)
    : model_(&m),
      opts_(opts),
      timing_(m.config, model::QuantScheme::w4a16_kv8(), opts.accel, opts.mem),
      rope_(m.config.rope_theta),
      softmax_(exp_),
      silu_(exp_) {
    if (opts_.max_batch == 0) {
        throw std::invalid_argument("AcceleratorOptions: max_batch must be >= 1");
    }
    if (opts_.prefix_sharing && opts_.accel.kv_page_tokens == 0) {
        throw std::invalid_argument(
            "AcceleratorOptions: prefix_sharing requires accel.kv_page_tokens > 0");
    }
    const std::size_t mb = opts_.max_batch;
    sz_fifo_.reserve(mb);
    for (std::size_t s = 0; s < mb; ++s) {
        sz_fifo_.emplace_back(m.config.n_layers, m.config.n_kv_heads);
    }
    pos_.assign(mb, 0);
    slots_ = engine::SlotLedger(mb);
    k_cache_.resize(mb * m.config.n_layers * m.config.max_seq_len *
                    m.config.n_kv_heads);
    v_cache_.resize(k_cache_.size());
    ctx_scratch_.reserve(mb);
}

void Accelerator::reset_session(std::size_t slot) {
    check(slot < opts_.max_batch, "Accelerator: slot out of range");
    pos_[slot] = 0;
    sz_fifo_[slot] =
        quant::ScaleZeroFifo(model_->config.n_layers, model_->config.n_kv_heads);
    const std::size_t per_session =
        model_->config.n_layers * model_->config.max_seq_len * model_->config.n_kv_heads;
    for (std::size_t i = slot * per_session; i < (slot + 1) * per_session; ++i) {
        k_cache_[i] = KvEntry{};
        v_cache_[i] = KvEntry{};
    }
}

void Accelerator::reset() {
    for (std::size_t s = 0; s < opts_.max_batch; ++s) reset_session(s);
}

std::size_t Accelerator::position(std::size_t slot) const {
    check(slot < opts_.max_batch, "Accelerator: slot out of range");
    return pos_[slot];
}

std::size_t Accelerator::reserve_slot() { return slots_.acquire(); }

void Accelerator::release_slot(std::size_t slot) {
    check(slots_.release(slot), "release_slot: slot out of range or not reserved");
    reset_session(slot);
}

std::size_t Accelerator::kv_slot(std::size_t session, std::size_t layer,
                                 std::size_t token, std::size_t kv_head) const noexcept {
    return ((session * model_->config.n_layers + layer) * model_->config.max_seq_len +
            token) *
               model_->config.n_kv_heads +
           kv_head;
}

std::size_t Accelerator::page_entry_idx(std::size_t layer, std::size_t t,
                                        std::size_t kv_head) const noexcept {
    return (layer * opts_.accel.kv_page_tokens + t) * model_->config.n_kv_heads +
           kv_head;
}

std::size_t Accelerator::matched_pages(
    const std::vector<std::uint64_t>& hashes) const {
    std::size_t n = 0;
    while (n < hashes.size() &&
           prefix_store_.find(hashes[n]) != prefix_store_.end()) {
        ++n;
    }
    return n;
}

std::size_t Accelerator::probe_prefix(std::span<const std::int32_t> prompt,
                                      std::size_t max_cover) const {
    if (!opts_.prefix_sharing) return 0;
    const std::size_t pt = opts_.accel.kv_page_tokens;
    const std::vector<std::uint64_t> hashes = prefix::prefix_chain_hashes(prompt, pt);
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    // Full pages only: the scale-zero FIFO replay leaves a prefilled state
    // only at a flush boundary.
    std::size_t covered = std::min(matched_pages(hashes) * pt, max_cover);
    return covered - covered % pt;
}

std::size_t Accelerator::adopt_prefix(std::size_t slot,
                                      std::span<const std::int32_t> prompt,
                                      std::size_t max_cover) {
    if (!opts_.prefix_sharing) return 0;
    const model::ModelConfig& cfg = model_->config;
    check(slot < opts_.max_batch, "adopt_prefix: slot out of range");
    check(pos_[slot] == 0, "adopt_prefix: slot already holds history");
    const std::size_t pt = opts_.accel.kv_page_tokens;
    const std::vector<std::uint64_t> hashes = prefix::prefix_chain_hashes(prompt, pt);
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    std::size_t covered = std::min(matched_pages(hashes) * pt, max_cover);
    covered -= covered % pt;
    if (covered == 0) return 0;
    check(covered <= cfg.max_seq_len, "adopt_prefix: prefix exceeds context window");
    // Deep-copy the stored entries into the slot's caches and replay their
    // scale-zero packs through the slot's fresh FIFO in prefill order, so the
    // slot state is bit-for-bit what re-prefilling the covered span produces.
    for (std::size_t tok = 0; tok < covered; ++tok) {
        const StoredPage& page = prefix_store_.at(hashes[tok / pt]);
        for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
            for (std::size_t h = 0; h < cfg.n_kv_heads; ++h) {
                const std::size_t e = page_entry_idx(layer, tok % pt, h);
                k_cache_[kv_slot(slot, layer, tok, h)] = page.k[e];
                v_cache_[kv_slot(slot, layer, tok, h)] = page.v[e];
                (void)sz_fifo_[slot].append(layer, h, false, tok, page.k[e].params);
                (void)sz_fifo_[slot].append(layer, h, true, tok, page.v[e].params);
            }
        }
    }
    pos_[slot] = covered;
    prefix_hits_.fetch_add(1, std::memory_order_relaxed);
    prefix_covered_.fetch_add(covered, std::memory_order_relaxed);
    return covered;
}

std::size_t Accelerator::register_prefix(std::size_t slot,
                                         std::span<const std::int32_t> prompt,
                                         std::size_t max_new_pages) {
    if (!opts_.prefix_sharing || max_new_pages == 0) return 0;
    const model::ModelConfig& cfg = model_->config;
    check(slot < opts_.max_batch, "register_prefix: slot out of range");
    const std::size_t pt = opts_.accel.kv_page_tokens;
    const std::vector<std::uint64_t> hashes = prefix::prefix_chain_hashes(prompt, pt);
    if (pos_[slot] < hashes.size() * pt) return 0;  // prefill incomplete
    const std::size_t epp = cfg.n_layers * pt * cfg.n_kv_heads;
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    std::size_t added = 0;
    for (std::size_t p = 0; p < hashes.size() && added < max_new_pages; ++p) {
        if (prefix_store_.find(hashes[p]) != prefix_store_.end()) continue;
        StoredPage page;
        page.k.resize(epp);
        page.v.resize(epp);
        for (std::size_t t = 0; t < pt; ++t) {
            const std::size_t tok = p * pt + t;
            for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
                for (std::size_t h = 0; h < cfg.n_kv_heads; ++h) {
                    const std::size_t e = page_entry_idx(layer, t, h);
                    page.k[e] = k_cache_[kv_slot(slot, layer, tok, h)];
                    page.v[e] = v_cache_[kv_slot(slot, layer, tok, h)];
                }
            }
        }
        prefix_store_.emplace(hashes[p], std::move(page));
        ++added;
    }
    return added;
}

std::size_t Accelerator::drop_prefix_cache() {
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    const std::size_t n = prefix_store_.size();
    prefix_store_.clear();
    return n;
}

engine::PrefixSharingStats Accelerator::prefix_stats() const {
    engine::PrefixSharingStats s;
    s.hits = prefix_hits_.load(std::memory_order_relaxed);
    s.covered_tokens = prefix_covered_.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(prefix_mu_);
    s.pages_shared = prefix_store_.size();
    return s;
}

void Accelerator::attention(std::size_t layer, std::size_t slot, std::vector<Fp16>& x) {
    const obs::ScopedPhase phase(profiler_, obs::Phase::kAttention);
    const model::ModelConfig& cfg = model_->config;
    const PackedLayer& lw = model_->layers[layer];
    const std::size_t hd = cfg.head_dim();
    const std::size_t heads_per_kv = cfg.n_heads / cfg.n_kv_heads;
    const std::size_t pos = pos_[slot];

    // Layer-entry RMSNorm (square sum computed by the DOT engine side-path).
    std::vector<Fp16> xn(cfg.dim);
    rms_.run(x, lw.attn_norm, cfg.rms_eps, xn, SpuRmsNorm::square_sum(x));

    // Projections from the interleaved weight streams.
    std::vector<Fp16> q(cfg.dim), k(cfg.kv_dim()), v(cfg.kv_dim());
    DotEngine::gemv(lw.wq.stream, cfg.dim, cfg.dim, xn, q);
    DotEngine::gemv(lw.wk.stream, cfg.kv_dim(), cfg.dim, xn, k);
    DotEngine::gemv(lw.wv.stream, cfg.kv_dim(), cfg.dim, xn, v);

    // On-the-fly RoPE.
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
        rope_.run(std::span<Fp16>(q).subspan(h * hd, hd), pos);
    }
    for (std::size_t h = 0; h < cfg.n_kv_heads; ++h) {
        rope_.run(std::span<Fp16>(k).subspan(h * hd, hd), pos);
    }

    // Online KV8 quantization; packs go through the Fig. 4B FIFO, codes
    // through the serial-to-parallel unit (to DDR on the real device).
    for (std::size_t h = 0; h < cfg.n_kv_heads; ++h) {
        SpuQuant::Result qk = kv_quant_.run(std::span<const Fp16>(k).subspan(h * hd, hd));
        SpuQuant::Result qv = kv_quant_.run(std::span<const Fp16>(v).subspan(h * hd, hd));
        for (const std::uint8_t c : qk.codes) (void)s2p_.push_byte(c);
        for (const std::uint8_t c : qv.codes) (void)s2p_.push_byte(c);
        (void)sz_fifo_[slot].append(layer, h, false, pos, qk.params);
        (void)sz_fifo_[slot].append(layer, h, true, pos, qv.params);
        k_cache_[kv_slot(slot, layer, pos, h)] = {std::move(qk.codes), qk.params};
        v_cache_[kv_slot(slot, layer, pos, h)] = {std::move(qv.codes), qv.params};
    }

    // Head-wise attention: history from the quantized cache, the current
    // token's K/V used pre-quantization (they are still on chip — §V.A).
    const Fp16 inv_sqrt_d = Fp16::from_float(1.0f / std::sqrt(static_cast<float>(hd)));
    std::vector<Fp16> att_out(cfg.dim);
    std::vector<Fp16> scores(pos + 1);
    for (std::size_t h = 0; h < cfg.n_heads; ++h) {
        const std::size_t kvh = h / heads_per_kv;
        const std::span<const Fp16> qh(q.data() + h * hd, hd);

        for (std::size_t t = 0; t < pos; ++t) {
            const KvEntry& e = k_cache_[kv_slot(slot, layer, t, kvh)];
            const std::vector<Fp16> kt = DequantUnit::run_kv(e.codes, e.params);
            scores[t] = DotEngine::dot(qh, kt) * inv_sqrt_d;
        }
        scores[pos] =
            DotEngine::dot(qh, std::span<const Fp16>(k).subspan(kvh * hd, hd)) *
            inv_sqrt_d;

        std::vector<Fp16> probs(pos + 1);
        softmax_.run(scores, probs);

        // Scaled-dot accumulation of values (fp16 MACs, one value row at a
        // time as the history streams in).
        std::span<Fp16> out(att_out.data() + h * hd, hd);
        for (auto& o : out) o = Fp16::zero();
        for (std::size_t t = 0; t < pos; ++t) {
            const KvEntry& e = v_cache_[kv_slot(slot, layer, t, kvh)];
            const std::vector<Fp16> vt = DequantUnit::run_kv(e.codes, e.params);
            for (std::size_t i = 0; i < hd; ++i) out[i] = out[i] + probs[t] * vt[i];
        }
        for (std::size_t i = 0; i < hd; ++i) {
            out[i] = out[i] + probs[pos] * v[kvh * hd + i];
        }
    }

    // Output projection + residual add (fused with the square-sum pass).
    std::vector<Fp16> o(cfg.dim);
    DotEngine::gemv(lw.wo.stream, cfg.dim, cfg.dim, att_out, o);
    for (std::size_t i = 0; i < cfg.dim; ++i) x[i] = x[i] + o[i];
}

void Accelerator::mlp(std::size_t layer, std::vector<Fp16>& x) {
    const model::ModelConfig& cfg = model_->config;
    const PackedLayer& lw = model_->layers[layer];

    std::vector<Fp16> xn(cfg.dim);
    rms_.run(x, lw.mlp_norm, cfg.rms_eps, xn, SpuRmsNorm::square_sum(x));

    std::vector<Fp16> gate(cfg.hidden_dim), up(cfg.hidden_dim), hidden(cfg.hidden_dim);
    DotEngine::gemv(lw.w_gate.stream, cfg.hidden_dim, cfg.dim, xn, gate);
    DotEngine::gemv(lw.w_up.stream, cfg.hidden_dim, cfg.dim, xn, up);
    silu_.run(gate, up, hidden);

    std::vector<Fp16> down(cfg.dim);
    DotEngine::gemv(lw.w_down.stream, cfg.dim, cfg.hidden_dim, hidden, down);
    for (std::size_t i = 0; i < cfg.dim; ++i) x[i] = x[i] + down[i];
}

void Accelerator::forward_slot(std::int32_t token, std::size_t slot,
                               std::span<float> logits_out) {
    const model::ModelConfig& cfg = model_->config;
    check(token >= 0 && static_cast<std::uint64_t>(token) < cfg.vocab_size,
          "Accelerator: token out of range");
    check(slot < opts_.max_batch, "Accelerator: slot out of range");
    check(pos_[slot] < cfg.max_seq_len, "Accelerator: KV reservation exhausted");
    check(logits_out.size() >= cfg.vocab_size, "Accelerator: logits_out too small");

    // Embedding row (fp16 in DDR).
    std::vector<Fp16> x(cfg.dim);
    const std::size_t base = static_cast<std::size_t>(token) * cfg.dim;
    for (std::size_t i = 0; i < cfg.dim; ++i) x[i] = model_->embedding[base + i];

    for (std::size_t layer = 0; layer < cfg.n_layers; ++layer) {
        attention(layer, slot, x);
        mlp(layer, x);
    }

    std::vector<Fp16> xn(cfg.dim);
    rms_.run(x, model_->final_norm, cfg.rms_eps, xn, SpuRmsNorm::square_sum(x));
    std::vector<Fp16> logits_h(cfg.vocab_size);
    DotEngine::gemv(model_->lm_head.stream, cfg.vocab_size, cfg.dim, xn, logits_h);
    for (std::size_t i = 0; i < cfg.vocab_size; ++i) {
        logits_out[i] = logits_h[i].to_float();
    }
    ++pos_[slot];
}

StepResult Accelerator::step(std::int32_t token) {
    StepResult r;
    r.logits.resize(model_->config.vocab_size);
    const std::size_t ctx = pos_[0];
    forward_slot(token, 0, r.logits);
    if (opts_.collect_timing) {
        r.timing = timing_.token_timing(ctx);
    }
    return r;
}

void Accelerator::decode_batch(std::span<const std::int32_t> tokens,
                               std::span<const std::size_t> slots,
                               std::span<float> logits_out) {
    const std::size_t nb = tokens.size();
    const std::size_t vocab = model_->config.vocab_size;
    check(nb >= 1, "decode_batch: empty batch");
    check(nb == slots.size(), "decode_batch: tokens/slots size mismatch");
    check(nb <= opts_.max_batch, "decode_batch: batch exceeds max_batch");
    check(logits_out.size() >= nb * vocab, "decode_batch: logits_out too small");
    for (std::size_t b = 0; b < nb; ++b) {
        check(slots[b] < opts_.max_batch, "decode_batch: slot out of range");
        for (std::size_t c = b + 1; c < nb; ++c) {
            check(slots[b] != slots[c], "decode_batch: duplicate slot");
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    ctx_scratch_.clear();
    for (std::size_t b = 0; b < nb; ++b) ctx_scratch_.push_back(pos_[slots[b]]);

    // Functional math is per-session (each lane bit-identical to a solo run);
    // the device prices the step batched — weights once, KV per session.
    for (std::size_t b = 0; b < nb; ++b) {
        forward_slot(tokens[b], slots[b], logits_out.subspan(b * vocab, vocab));
    }
    const auto t1 = std::chrono::steady_clock::now();

    last_cost_.wall_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (opts_.collect_timing) {
        const TokenTiming timing = timing_.batch_timing(ctx_scratch_);
        last_cost_.simulated_ns = timing.total_ns;
        last_cost_.sim_mem_bound_ns = timing.mem_bound_ns;
        last_cost_.sim_compute_ns = timing.spu_exposed_ns;
        last_cost_.sim_overhead_ns = timing.overhead_ns;
    } else {
        last_cost_.simulated_ns = 0.0;
        last_cost_.sim_mem_bound_ns = 0.0;
        last_cost_.sim_compute_ns = 0.0;
        last_cost_.sim_overhead_ns = 0.0;
    }
    last_cost_.weight_walks = 1.0;  // one streaming pass over the weights per step
}

GenerationResult Accelerator::generate(std::span<const std::int32_t> prompt,
                                       std::size_t max_new, model::Sampler& sampler,
                                       std::int32_t eos) {
    check(!prompt.empty(), "Accelerator: empty prompt");
    GenerationResult g;

    StepResult last;
    for (const std::int32_t t : prompt) last = step(t);

    // Same attribution rule as InferenceSession::generate: a token is billed
    // the decode step that consumes it, so total_ns covers exactly the decode
    // steps executed here (prefill is TTFT, not decode time).
    for (std::size_t i = 0; i < max_new && pos_[0] < model_->config.max_seq_len; ++i) {
        const std::int32_t next = sampler.sample(last.logits);
        g.tokens.push_back(next);
        if (next == eos) break;
        last = step(next);
        g.total_ns += last.timing.total_ns;
    }
    return g;
}

}  // namespace efld::accel
