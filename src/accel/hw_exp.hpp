// Hardware-style exponential: e^x via range reduction + 2^f lookup table.
//
// The SPU's softmax and SiLU pipelines need e^x. FPGA implementations avoid
// a full polynomial FPU path; the standard trick is
//   e^x = 2^(x * log2(e)) = 2^k * 2^f,  k integer, f in [0, 1)
// with 2^f read from a ROM. We model a 1024-entry fp16-valued ROM (max
// relative error ~2^-10, well inside fp16 resolution).
#pragma once

#include <array>
#include <cstddef>

#include "common/fp16.hpp"

namespace efld::accel {

class HwExp {
public:
    static constexpr std::size_t kRomEntries = 1024;

    HwExp();

    // e^x with LUT-based range reduction; saturates to 0 below the fp16
    // subnormal range and to +inf above fp16 max.
    [[nodiscard]] Fp16 exp(Fp16 x) const noexcept;

    // Sigmoid built from the same ROM: 1 / (1 + e^-x).
    [[nodiscard]] Fp16 sigmoid(Fp16 x) const noexcept;

    // ROM footprint in bits (resource-model input).
    [[nodiscard]] static constexpr std::size_t rom_bits() noexcept {
        return kRomEntries * 16;
    }

private:
    std::array<Fp16, kRomEntries> rom_;  // 2^f for f = i / kRomEntries
};

}  // namespace efld::accel
