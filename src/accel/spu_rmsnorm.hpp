// RMSNorm submodule (Fig. 5C2): two sequential passes, with an optional
// square-sum bypass when the DOT engine already produced it (the fused
// pipeline computes the square sum concurrently with the residual add as the
// output projection streams out — §V.A).
#pragma once

#include <optional>
#include <span>

#include "common/fp16.hpp"
#include "accel/spu_rope.hpp"  // SpuCycles

namespace efld::accel {

class SpuRmsNorm {
public:
    // out_i = x_i / rms * w_i. If `precomputed_square_sum` is provided the
    // first pass is skipped (cycle count halves) — the bypass path.
    SpuCycles run(std::span<const Fp16> x, std::span<const Fp16> weight, float eps,
                  std::span<Fp16> out,
                  std::optional<float> precomputed_square_sum = std::nullopt) const;

    // The square-sum the DOT engine can compute on the side.
    [[nodiscard]] static float square_sum(std::span<const Fp16> x) noexcept;
};

}  // namespace efld::accel
