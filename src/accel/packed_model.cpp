#include "accel/packed_model.hpp"

#include "common/check.hpp"
#include "quant/weight_format.hpp"

namespace efld::accel {

namespace {

PackedMatrix pack_matrix(const quant::QuantizedLinear& q) {
    PackedMatrix m;
    m.rows = q.rows();
    m.cols = q.cols();
    m.stream = quant::pack_weight_stream(q);
    return m;
}

std::vector<Fp16> to_fp16_vec(std::span<const float> x) {
    std::vector<Fp16> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = Fp16::from_float(x[i]);
    return out;
}

}  // namespace

PackedModel PackedModel::build(const model::QuantizedModelWeights& qw) {
    check(qw.quant_config.group_size == kNibblesPerWord,
          "PackedModel: bus format requires group_size 128");
    PackedModel p;
    p.config = qw.config;
    p.embedding = to_fp16_vec(qw.embedding.flat());
    p.layers.reserve(qw.layers.size());
    for (const auto& l : qw.layers) {
        PackedLayer pl;
        pl.wq = pack_matrix(l.wq);
        pl.wk = pack_matrix(l.wk);
        pl.wv = pack_matrix(l.wv);
        pl.wo = pack_matrix(l.wo);
        pl.w_gate = pack_matrix(l.w_gate);
        pl.w_up = pack_matrix(l.w_up);
        pl.w_down = pack_matrix(l.w_down);
        pl.attn_norm = to_fp16_vec(l.attn_norm);
        pl.mlp_norm = to_fp16_vec(l.mlp_norm);
        p.layers.push_back(std::move(pl));
    }
    p.final_norm = to_fp16_vec(qw.final_norm);
    p.lm_head = pack_matrix(qw.lm_head);
    return p;
}

std::uint64_t PackedModel::weight_stream_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& l : layers) {
        total += l.wq.stream_bytes() + l.wk.stream_bytes() + l.wv.stream_bytes() +
                 l.wo.stream_bytes() + l.w_gate.stream_bytes() + l.w_up.stream_bytes() +
                 l.w_down.stream_bytes();
        total += (l.attn_norm.size() + l.mlp_norm.size()) * 2;
    }
    total += lm_head.stream_bytes();
    total += final_norm.size() * 2;
    return total;
}

}  // namespace efld::accel
