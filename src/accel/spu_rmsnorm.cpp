#include "accel/spu_rmsnorm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace efld::accel {

float SpuRmsNorm::square_sum(std::span<const Fp16> x) noexcept {
    // The accumulator is wider than fp16 in hardware (DSP cascade); float32
    // accumulation models that.
    float acc = 0.0f;
    for (const Fp16 v : x) {
        const float f = v.to_float();
        acc += f * f;
    }
    return acc;
}

SpuCycles SpuRmsNorm::run(std::span<const Fp16> x, std::span<const Fp16> weight, float eps,
                          std::span<Fp16> out,
                          std::optional<float> precomputed_square_sum) const {
    check(x.size() == weight.size() && x.size() == out.size(), "SpuRmsNorm: size mismatch");
    check(!x.empty(), "SpuRmsNorm: empty input");

    std::uint64_t cycles = 0;
    float sq;
    if (precomputed_square_sum) {
        sq = *precomputed_square_sum;
    } else {
        sq = square_sum(x);
        cycles += x.size();  // pass 1
    }

    const float mean_sq = sq / static_cast<float>(x.size());
    const float inv_rms = 1.0f / std::sqrt(mean_sq + eps);
    const Fp16 inv_rms_h = Fp16::from_float(inv_rms);

    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = x[i] * inv_rms_h * weight[i];
    }
    cycles += x.size();  // pass 2
    cycles += 16;        // rsqrt pipeline latency between the passes
    return SpuCycles{cycles};
}

}  // namespace efld::accel
