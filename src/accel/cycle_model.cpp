#include "accel/cycle_model.hpp"

#include <algorithm>

#include "common/bitpack.hpp"
#include "common/check.hpp"

namespace efld::accel {

using memsim::Dir;
using memsim::Transaction;

DecodeCycleModel::DecodeCycleModel(const model::ModelConfig& cfg,
                                   const model::QuantScheme& scheme,
                                   const AccelConfig& accel,
                                   const memsim::MemorySystemConfig& mem)
    : cfg_(cfg),
      scheme_(scheme),
      accel_(accel),
      mcu_(cfg, scheme),
      mem_(std::make_unique<memsim::MemorySystem>(mem)) {}

void DecodeCycleModel::dense_op(OpCtx& octx, const std::string& name,
                                const Transaction& txn, std::uint64_t vpu_cycles,
                                double spu_ns) {
    const double mem_ns = txn.bytes > 0 ? mem_->service(txn) : 0.0;
    const double compute_ns = static_cast<double>(vpu_cycles) * accel_.clk_ns();
    // The stream and the VPU pipeline against each other; the op takes the
    // slower of the two plus its FSM start.
    double total = std::max(mem_ns, compute_ns) +
                   accel_.op_start_overhead_clk * accel_.clk_ns();

    double exposed_spu = 0.0;
    if (accel_.fine_grained_fusion) {
        // Misc work hides inside the dense stream; only the excess (if the
        // cover op is too short) is exposed.
        exposed_spu = std::max(0.0, spu_ns - total);
    } else {
        exposed_spu = spu_ns;  // coarse pipeline serializes it
    }
    total += exposed_spu;

    octx.out->mem_bound_ns += std::max(mem_ns, compute_ns);
    octx.out->overhead_ns += accel_.op_start_overhead_clk * accel_.clk_ns();
    octx.out->spu_exposed_ns += exposed_spu;
    octx.out->total_ns += total;
    if (txn.dir == memsim::Dir::kRead) {
        // KV regions are distinguished by name prefix for the byte breakdown.
        if (name.rfind("kv", 0) == 0) {
            octx.out->kv_read_bytes += txn.bytes;
        } else {
            octx.out->weight_bytes += txn.bytes;
        }
    } else {
        octx.out->kv_write_bytes += txn.bytes;
    }
    if (octx.collect) {
        octx.out->ops.push_back({name, mem_ns, compute_ns, spu_ns,
                                 accel_.fine_grained_fusion && exposed_spu == 0.0, total});
    }
}

void DecodeCycleModel::spu_only_op(OpCtx& octx, const std::string& name, double spu_ns) {
    octx.out->spu_exposed_ns += spu_ns;
    octx.out->total_ns += spu_ns;
    if (octx.collect) {
        octx.out->ops.push_back({name, 0.0, 0.0, spu_ns, false, spu_ns});
    }
}

TokenTiming DecodeCycleModel::token_timing(std::size_t ctx, bool collect_ops) {
    return batch_timing(std::span<const std::size_t>(&ctx, 1), collect_ops);
}

TokenTiming DecodeCycleModel::batch_timing(std::span<const std::size_t> ctxs,
                                           bool collect_ops) {
    check(!ctxs.empty(), "DecodeCycleModel: empty batch");
    for (const std::size_t ctx : ctxs) {
        check(ctx < cfg_.max_seq_len, "DecodeCycleModel: context exceeds KV reservation");
    }
    const std::size_t nb = ctxs.size();
    const double nbd = static_cast<double>(nb);

    TokenTiming t;
    OpCtx octx{&t, collect_ops};
    const double clk = accel_.clk_ns();
    const std::size_t hd = cfg_.head_dim();
    const std::size_t heads_per_kv = cfg_.n_heads / cfg_.n_kv_heads;
    const std::uint64_t kv_elem = scheme_.kv_bits / 8;

    // Weight streams cross the bus once per step; the VPU runs one dot per
    // lane per streamed group, so its occupancy scales with the batch (the
    // decode-side mirror of prefill_timing's compute/stream trade).
    auto stream_cycles = [nb](const Transaction& txn) {
        return div_ceil(txn.bytes, kBusBytes) * nb;  // VPU: one word/clk/lane
    };

    // A session's KV history is one burst per block-table page when paging is
    // on (each paying its own descriptor/FSM start), one burst per history
    // otherwise.
    const std::size_t page_tok = accel_.kv_page_tokens;
    auto history_pages = [page_tok](std::size_t ctx, auto&& fn) {
        if (page_tok == 0) {
            fn(std::size_t{0}, ctx);
            return;
        }
        for (std::size_t t = 0; t < ctx; t += page_tok) {
            fn(t, std::min(ctx, t + page_tok));
        }
    };

    // SPU serial costs (cycles) for this geometry; per-lane where the work is
    // per-session. Softmax length tracks each lane's own context.
    const double rms_ns = static_cast<double>(cfg_.dim + 16) * clk;  // bypassed pass 1
    const double rope_head_ns = static_cast<double>(hd) * clk;
    auto softmax_ns = [clk](std::size_t ctx) {
        return static_cast<double>(3 * (ctx + 1) + 16) * clk;
    };
    auto softmax_all_ns = [&] {
        double s = 0.0;
        for (const std::size_t ctx : ctxs) s += softmax_ns(ctx);
        return s;
    };
    const double quant_head_ns = static_cast<double>(2 * hd + 8) * clk;
    const double silu_ns = static_cast<double>(cfg_.hidden_dim) * clk;

    // Embedding row fetch, one per lane.
    for (std::size_t b = 0; b < nb; ++b) {
        dense_op(octx, "embedding", mcu_.embedding_read(0), cfg_.dim / accel_.vpu_lanes,
                 0.0);
    }

    for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
        if (accel_.fine_grained_fusion) {
            // ---- Fig. 3: fine-grained head-wise fused schedule ----
            for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
                const bool new_kv_head = (h % heads_per_kv) == 0;
                const std::size_t kvh = h / heads_per_kv;

                // Q projection for this head; layer-entry RMSNorm and the
                // on-the-fly RoPE (per lane) hide behind it.
                const Transaction q_txn =
                    mcu_.weight_rows_read(layer, MatrixId::kWq, h * hd, (h + 1) * hd);
                dense_op(octx, "q_proj", q_txn, stream_cycles(q_txn),
                         rope_head_ns * nbd + (h == 0 ? rms_ns * nbd : 0.0));

                if (new_kv_head) {
                    const Transaction k_txn = mcu_.weight_rows_read(
                        layer, MatrixId::kWk, kvh * hd, (kvh + 1) * hd);
                    dense_op(octx, "k_proj", k_txn, stream_cycles(k_txn),
                             (rope_head_ns + quant_head_ns) * nbd);
                }

                // Dot against each lane's rotated-key history (+ packs every
                // 16 tokens) — KV traffic is per-session, per page.
                for (std::size_t b = 0; b < nb; ++b) {
                    if (ctxs[b] == 0) continue;
                    history_pages(ctxs[b], [&](std::size_t tb, std::size_t te) {
                        const Transaction kc =
                            mcu_.kv_code_read_range(layer, kvh, false, tb, te);
                        dense_op(octx, "kv_qk_hist", kc, div_ceil(kc.bytes, kBusBytes),
                                 0.0);
                        const Transaction kp =
                            mcu_.kv_pack_read_range(layer, kvh, false, tb, te);
                        if (kp.bytes > 0) dense_op(octx, "kv_qk_packs", kp, 0, 0.0);
                    });
                }

                if (new_kv_head) {
                    // V projection; every lane's softmax and value
                    // quantization hide behind it (§V.A).
                    const Transaction v_txn = mcu_.weight_rows_read(
                        layer, MatrixId::kWv, kvh * hd, (kvh + 1) * hd);
                    dense_op(octx, "v_proj", v_txn, stream_cycles(v_txn),
                             softmax_all_ns() + quant_head_ns * nbd);
                }

                // Weighted value accumulation over each lane's history. For
                // GQA heads that reuse a cached V projection, a lane's
                // softmax hides behind its own history stream instead — or is
                // exposed when that lane has no history yet.
                for (std::size_t b = 0; b < nb; ++b) {
                    if (ctxs[b] > 0) {
                        // A paged history hides the lane's softmax behind its
                        // FIRST page burst only — shorter cover ops are the
                        // latency cost of paging.
                        bool first_page = true;
                        history_pages(ctxs[b], [&](std::size_t tb, std::size_t te) {
                            const Transaction vc =
                                mcu_.kv_code_read_range(layer, kvh, true, tb, te);
                            dense_op(octx, "kv_av_hist", vc,
                                     div_ceil(vc.bytes, kBusBytes),
                                     first_page && !new_kv_head
                                         ? softmax_ns(ctxs[b])
                                         : 0.0);
                            first_page = false;
                            const Transaction vp =
                                mcu_.kv_pack_read_range(layer, kvh, true, tb, te);
                            if (vp.bytes > 0) dense_op(octx, "kv_av_packs", vp, 0, 0.0);
                        });
                    } else if (!new_kv_head) {
                        spu_only_op(octx, "softmax_exposed", softmax_ns(ctxs[b]));
                    }
                }

                t.overhead_ns += accel_.head_overhead_clk * clk;
                t.total_ns += accel_.head_overhead_clk * clk;
            }
        } else {
            // ---- DFX-style coarse schedule: full projections, then
            // attention, misc ops exposed between stages (per lane) ----
            spu_only_op(octx, "rmsnorm",
                        (rms_ns + static_cast<double>(cfg_.dim) * clk) * nbd);
            const Transaction q_txn = mcu_.weight_stream_read(layer, MatrixId::kWq);
            dense_op(octx, "q_proj", q_txn, stream_cycles(q_txn), 0.0);
            const Transaction k_txn = mcu_.weight_stream_read(layer, MatrixId::kWk);
            dense_op(octx, "k_proj", k_txn, stream_cycles(k_txn), 0.0);
            const Transaction v_txn = mcu_.weight_stream_read(layer, MatrixId::kWv);
            dense_op(octx, "v_proj", v_txn, stream_cycles(v_txn), 0.0);
            spu_only_op(octx, "rope",
                        static_cast<double>(cfg_.n_heads + cfg_.n_kv_heads) *
                            rope_head_ns * nbd);
            spu_only_op(octx, "kv_quant",
                        static_cast<double>(2 * cfg_.n_kv_heads) * quant_head_ns * nbd);
            for (std::size_t h = 0; h < cfg_.n_heads; ++h) {
                const std::size_t kvh = h / heads_per_kv;
                for (std::size_t b = 0; b < nb; ++b) {
                    if (ctxs[b] == 0) continue;
                    history_pages(ctxs[b], [&](std::size_t tb, std::size_t te) {
                        const Transaction kc =
                            mcu_.kv_code_read_range(layer, kvh, false, tb, te);
                        dense_op(octx, "kv_qk_hist", kc, div_ceil(kc.bytes, kBusBytes),
                                 0.0);
                        const Transaction kp =
                            mcu_.kv_pack_read_range(layer, kvh, false, tb, te);
                        if (kp.bytes > 0) dense_op(octx, "kv_qk_packs", kp, 0, 0.0);
                    });
                }
                spu_only_op(octx, "softmax", softmax_all_ns());
                for (std::size_t b = 0; b < nb; ++b) {
                    if (ctxs[b] == 0) continue;
                    history_pages(ctxs[b], [&](std::size_t tb, std::size_t te) {
                        const Transaction vc =
                            mcu_.kv_code_read_range(layer, kvh, true, tb, te);
                        dense_op(octx, "kv_av_hist", vc, div_ceil(vc.bytes, kBusBytes),
                                 0.0);
                        const Transaction vp =
                            mcu_.kv_pack_read_range(layer, kvh, true, tb, te);
                        if (vp.bytes > 0) dense_op(octx, "kv_av_packs", vp, 0, 0.0);
                    });
                }
            }
        }

        // KV writeback for each lane's current token (codes now; packs when
        // the Fig. 4B FIFO fills at token % 16 == 15).
        for (std::size_t kvh = 0; kvh < cfg_.n_kv_heads; ++kvh) {
            for (const bool is_value : {false, true}) {
                for (std::size_t b = 0; b < nb; ++b) {
                    dense_op(octx, "kv_write",
                             mcu_.kv_code_write(layer, kvh, is_value, ctxs[b]),
                             div_ceil(hd * kv_elem, kBusBytes), 0.0);
                    if (mcu_.pack_write_due(ctxs[b])) {
                        dense_op(octx, "kv_pack_write",
                                 mcu_.kv_pack_write(layer, kvh, is_value, ctxs[b]), 1,
                                 0.0);
                    }
                }
            }
        }

        // Output projection (residual add + square-sum fused behind it).
        const Transaction o_txn = mcu_.weight_stream_read(layer, MatrixId::kWo);
        dense_op(octx, "o_proj", o_txn, stream_cycles(o_txn), 0.0);

        // MLP: gate, up (SiLU + act-mul hidden behind up), down.
        const Transaction g_txn = mcu_.weight_stream_read(layer, MatrixId::kWGate);
        dense_op(octx, "gate_proj", g_txn, stream_cycles(g_txn),
                 accel_.fine_grained_fusion ? rms_ns * nbd : 0.0);
        if (!accel_.fine_grained_fusion) {
            spu_only_op(octx, "rmsnorm2",
                        (rms_ns + static_cast<double>(cfg_.dim) * clk) * nbd);
        }
        const Transaction u_txn = mcu_.weight_stream_read(layer, MatrixId::kWUp);
        dense_op(octx, "up_proj", u_txn, stream_cycles(u_txn),
                 accel_.fine_grained_fusion ? silu_ns * nbd : 0.0);
        if (!accel_.fine_grained_fusion) spu_only_op(octx, "silu", silu_ns * nbd);
        const Transaction d_txn = mcu_.weight_stream_read(layer, MatrixId::kWDown);
        dense_op(octx, "down_proj", d_txn, stream_cycles(d_txn), 0.0);

        // Norm vectors stream in with the layer.
        dense_op(octx, "norms", mcu_.norms_read(layer), 0, 0.0);

        t.overhead_ns += accel_.layer_overhead_clk * clk;
        t.total_ns += accel_.layer_overhead_clk * clk;
    }

    // LM head (final RMSNorm hides behind it in the fused schedule).
    const Transaction head_txn = mcu_.lm_head_read();
    dense_op(octx, "lm_head", head_txn, stream_cycles(head_txn),
             accel_.fine_grained_fusion ? rms_ns * nbd : 0.0);
    if (!accel_.fine_grained_fusion) {
        spu_only_op(octx, "final_rmsnorm",
                    (rms_ns + static_cast<double>(cfg_.dim) * clk) * nbd);
    }

    t.overhead_ns += accel_.token_overhead_clk * clk;
    t.total_ns += accel_.token_overhead_clk * clk;
    return t;
}

GenerationTiming DecodeCycleModel::generate_timing(std::size_t prompt_len,
                                                   std::size_t n_tokens) {
    GenerationTiming g;
    g.tokens = n_tokens;
    for (std::size_t i = 0; i < n_tokens; ++i) {
        g.total_ns += token_timing(prompt_len + i).total_ns;
    }
    return g;
}

PrefillTiming DecodeCycleModel::prefill_timing(std::size_t prompt_len,
                                               std::size_t tile_tokens) {
    check(prompt_len > 0 && prompt_len <= cfg_.max_seq_len,
          "prefill_timing: bad prompt length");
    check(tile_tokens > 0, "prefill_timing: tile must be positive");
    return prefill_span(0, prompt_len, tile_tokens);
}

PrefillTiming DecodeCycleModel::prefill_timing_shared(std::size_t prompt_len,
                                                      std::size_t covered_tokens,
                                                      std::size_t tile_tokens) {
    check(prompt_len > 0 && prompt_len <= cfg_.max_seq_len,
          "prefill_timing_shared: bad prompt length");
    check(covered_tokens < prompt_len,
          "prefill_timing_shared: covered span must leave a token to feed");
    check(tile_tokens > 0, "prefill_timing_shared: tile must be positive");
    return prefill_span(covered_tokens, prompt_len, tile_tokens);
}

PrefillTiming DecodeCycleModel::prefill_span(std::size_t start, std::size_t prompt_len,
                                             std::size_t tile_tokens) {
    PrefillTiming p;
    p.prompt_tokens = prompt_len;
    const double clk = accel_.clk_ns();
    const std::uint64_t kv_elem = scheme_.kv_bits / 8;

    // Per-tile projection cost: weights stream once (memory side), the VPU
    // runs `tile` dots per group (compute side). Attention and KV traffic
    // accumulate per token with its own growing history — positions below
    // `start` are adopted shared pages: zero tiles of their own, but they
    // still stream past as history under every uncovered token.
    const MatrixId mats[] = {MatrixId::kWq, MatrixId::kWk, MatrixId::kWv,
                             MatrixId::kWo, MatrixId::kWGate, MatrixId::kWUp,
                             MatrixId::kWDown};

    std::size_t done = start;
    while (done < prompt_len) {
        const std::size_t tile = std::min(tile_tokens, prompt_len - done);
        for (std::size_t layer = 0; layer < cfg_.n_layers; ++layer) {
            for (const MatrixId m : mats) {
                const Transaction txn = mcu_.weight_stream_read(layer, m);
                const double mem_ns = mem_->service(txn);
                const double compute_ns =
                    static_cast<double>(div_ceil(txn.bytes, kBusBytes)) *
                    static_cast<double>(tile) * clk;
                p.mem_ns += mem_ns;
                p.compute_ns += compute_ns;
                p.total_ns += std::max(mem_ns, compute_ns) +
                              accel_.op_start_overhead_clk * clk;
                p.weight_bytes += txn.bytes;
            }
            // Attention over the growing history + KV writeback, per token.
            for (std::size_t t = done; t < done + tile; ++t) {
                if (t > 0) {
                    for (const bool is_value : {false, true}) {
                        // One pass over the whole history per head set; heads
                        // share the same stream shape so scale by head count.
                        const Transaction kv = mcu_.kv_code_read(0, 0, is_value, t);
                        const double per_head_ns = mem_->service(kv);
                        const double heads =
                            static_cast<double>(cfg_.n_heads);
                        p.mem_ns += per_head_ns * heads;
                        p.total_ns += per_head_ns * heads;
                    }
                }
                const double kv_write_ns =
                    mem_->service({0, 2 * cfg_.kv_dim() * kv_elem, Dir::kWrite});
                p.mem_ns += kv_write_ns;
                p.total_ns += kv_write_ns;
            }
            p.total_ns += accel_.layer_overhead_clk * clk;
        }
        done += tile;
    }

    // LM head runs once, for the last prompt position.
    const Transaction head = mcu_.lm_head_read();
    const double head_ns = mem_->service(head);
    p.mem_ns += head_ns;
    p.total_ns += head_ns + accel_.token_overhead_clk * clk;
    p.weight_bytes += head.bytes;
    return p;
}

double DecodeCycleModel::matrix_engine_prefill_ns(std::size_t prompt_len,
                                                  double macs_per_cycle) {
    check(macs_per_cycle > 0, "matrix_engine_prefill_ns: bad MAC count");
    // Weights cross the bus once; the array reuses them across all prompt
    // tokens. FLOP count: 2 * params * tokens MACs for projections.
    const double weight_bytes =
        static_cast<double>(cfg_.layer_params() + cfg_.lm_head_params()) *
        scheme_.bytes_per_weight();
    const double mem_ns = weight_bytes / mem_->peak_bytes_per_s() * 1e9;
    const double macs = static_cast<double>(cfg_.layer_params()) *
                        static_cast<double>(prompt_len);
    const double compute_ns = macs / macs_per_cycle * accel_.clk_ns();
    return std::max(mem_ns, compute_ns);
}

double DecodeCycleModel::bandwidth_utilization(std::size_t ctx) {
    // Paper metric: measured token/s over "model weight transfers possible
    // per second" with weights counted at their nominal quantized width
    // (projection + lm_head params at weight_bits, no scale/zero overhead).
    const double weight_bytes =
        static_cast<double>(cfg_.layer_params() + cfg_.lm_head_params()) *
        (static_cast<double>(scheme_.weight_bits) / 8.0);
    const double theoretical = mem_->peak_bytes_per_s() / weight_bytes;
    const TokenTiming t = token_timing(ctx);
    return t.tokens_per_s() / theoretical;
}

}  // namespace efld::accel
