// Serial-to-parallel adapter (Fig. 5C3).
//
// Scalar streams (quantized KV codes, hidden states headed for the DOT
// operand FIFO) are collected into 512-bit bus words so every S2MM write is
// bus-width aligned. Two in/out FSM counters guarantee words are only
// released when full (or explicitly drained at end of stream).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitpack.hpp"

namespace efld::accel {

class SerialToParallel {
public:
    // Feed one byte lane; returns a full word every 64 bytes.
    std::optional<Word512> push_byte(std::uint8_t b);

    // Feed one fp16 lane; returns a full word every 32 halves.
    std::optional<Word512> push_half(Fp16 h);

    // Drain a partially filled word (zero-padded); nullopt when empty.
    std::optional<Word512> drain();

    [[nodiscard]] std::size_t fill_bytes() const noexcept { return fill_bytes_; }
    [[nodiscard]] std::uint64_t words_emitted() const noexcept { return words_emitted_; }

private:
    Word512 word_{};
    std::size_t fill_bytes_ = 0;
    std::uint64_t words_emitted_ = 0;
};

}  // namespace efld::accel
