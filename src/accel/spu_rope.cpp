#include "accel/spu_rope.hpp"

#include <cmath>

#include "common/check.hpp"

namespace efld::accel {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
constexpr double kHalfPi = 1.5707963267948966192313216916398;
}  // namespace

SinCosRom::SinCosRom() : rom_(kPoints) {
    for (std::size_t i = 0; i < kPoints; ++i) {
        const double a = kHalfPi * static_cast<double>(i) / static_cast<double>(kPoints);
        rom_[i] = Fp16::from_float(static_cast<float>(std::sin(a)));
    }
}

Fp16 SinCosRom::folded(double angle, bool as_cos) const noexcept {
    // Phase accumulator: reduce to [0, 2pi), then fold into the first
    // quadrant. cos(x) = sin(x + pi/2) is one extra quadrant of offset.
    double a = std::fmod(angle, kTwoPi);
    if (a < 0) a += kTwoPi;
    double phase = a / kTwoPi * 4.0;  // [0, 4) quadrants
    if (as_cos) phase += 1.0;
    const int quadrant = static_cast<int>(phase) % 4;
    const double frac = phase - std::floor(phase);

    std::size_t idx = static_cast<std::size_t>(frac * static_cast<double>(kPoints));
    if (idx >= kPoints) idx = kPoints - 1;

    switch (quadrant) {
        case 0: return lookup_quarter(idx);
        case 1: return lookup_quarter(kPoints - 1 - idx);
        case 2: return -lookup_quarter(idx);
        default: return -lookup_quarter(kPoints - 1 - idx);
    }
}

Fp16 SinCosRom::sin(double angle) const noexcept { return folded(angle, false); }
Fp16 SinCosRom::cos(double angle) const noexcept { return folded(angle, true); }

InvFreqRom::InvFreqRom(float theta_base) : theta_base_(theta_base), rom_(kTable / 2) {
    for (std::size_t half = 0; half < kTable / 2; ++half) {
        const double i = static_cast<double>(2 * half);
        rom_[half] = std::pow(static_cast<double>(theta_base_),
                              -i / static_cast<double>(kTable));
    }
}

double InvFreqRom::freq(std::size_t pair_index, std::size_t head_dim) const {
    // theta^(-2j/d) == ROM entry at i = 2j * (kTable / d), even by
    // construction when d divides kTable.
    check(head_dim > 0 && head_dim <= kTable, "InvFreqRom: head_dim out of range");
    check(kTable % head_dim == 0, "InvFreqRom: head_dim must divide the table");
    const std::size_t i = 2 * pair_index * (kTable / head_dim);
    check(i / 2 < rom_.size(), "InvFreqRom: pair index out of range");
    return rom_[i / 2];
}

SpuRope::SpuRope(float theta_base) : invfreq_(theta_base) {}

SpuCycles SpuRope::run(std::span<Fp16> head_vec, std::size_t pos) const {
    const std::size_t d = head_vec.size();
    check(d % 2 == 0, "SpuRope: head_dim must be even");
    const std::size_t half = d / 2;
    for (std::size_t j = 0; j < half; ++j) {
        const double angle = static_cast<double>(pos) * invfreq_.freq(j, d);
        const Fp16 c = sincos_.cos(angle);
        const Fp16 s = sincos_.sin(angle);
        const Fp16 x0 = head_vec[j];
        const Fp16 x1 = head_vec[j + half];
        head_vec[j] = x0 * c - x1 * s;
        head_vec[j + half] = x1 * c + x0 * s;
    }
    // One rotated pair per clock once the first half is cached.
    return SpuCycles{d};
}

}  // namespace efld::accel
