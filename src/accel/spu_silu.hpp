// SiLU submodule (Fig. 5C5): x / (1 + e^-x), fused with the up-projection
// multiply that produces the down-projection input (§VI.C).
#pragma once

#include <span>

#include "accel/hw_exp.hpp"
#include "accel/spu_rope.hpp"  // SpuCycles

namespace efld::accel {

class SpuSilu {
public:
    explicit SpuSilu(const HwExp& exp_unit) : exp_(exp_unit) {}

    // out_i = silu(gate_i) * up_i  — the "Act Mul" box of Fig. 2C.
    SpuCycles run(std::span<const Fp16> gate, std::span<const Fp16> up,
                  std::span<Fp16> out) const;

private:
    const HwExp& exp_;
};

}  // namespace efld::accel
