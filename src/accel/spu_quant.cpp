#include "accel/spu_quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace efld::accel {

SpuQuant::Result SpuQuant::run(std::span<const Fp16> x) const {
    check(!x.empty(), "SpuQuant: empty input");

    // Pass 1: min/max trackers (two comparators on the stream).
    float lo = x[0].to_float();
    float hi = lo;
    for (const Fp16 v : x) {
        const float f = v.to_float();
        lo = std::min(lo, f);
        hi = std::max(hi, f);
    }
    lo = std::min(lo, 0.0f);
    hi = std::max(hi, 0.0f);

    float scale = (hi - lo) / 255.0f;
    if (scale <= 0.0f) scale = 1.0f;
    const Fp16 scale_h = Fp16::from_float(scale);
    const float s = scale_h.to_float();
    const std::uint8_t z = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(std::lround(-lo / s)), 0, 255));

    // Pass 2: quantize against the fp16-stored scale.
    Result r;
    r.params = {scale_h, z};
    r.codes.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const int q = static_cast<int>(std::lround(x[i].to_float() / s)) + z;
        r.codes[i] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
    }
    r.cycles.cycles = 2 * x.size() + 8;  // two passes + divider latency
    return r;
}

}  // namespace efld::accel
