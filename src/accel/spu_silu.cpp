#include "accel/spu_silu.hpp"

#include "common/check.hpp"

namespace efld::accel {

SpuCycles SpuSilu::run(std::span<const Fp16> gate, std::span<const Fp16> up,
                       std::span<Fp16> out) const {
    check(gate.size() == up.size() && gate.size() == out.size(), "SpuSilu: size mismatch");
    for (std::size_t i = 0; i < gate.size(); ++i) {
        const Fp16 sig = exp_.sigmoid(gate[i]);
        out[i] = gate[i] * sig * up[i];
    }
    return SpuCycles{gate.size()};  // one element per clock, pipelined
}

}  // namespace efld::accel
