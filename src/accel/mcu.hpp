// Memory Control Unit (Fig. 5A): address planning + descriptor generation.
//
// The MCU owns the bare-metal address map (where each weight stream and each
// KV region lives) and turns the inference schedule into MM2S/S2MM
// descriptors. The KV cache is laid out head-major —
// [layer][K|V][head][token][head_dim] — so that the per-head history scans of
// the fused attention pipeline are single sequential bursts; scale-zero packs
// live in a parallel region with the same ordering, written one bus word per
// 16 tokens (the Fig. 4B FIFO flush schedule).
#pragma once

#include <cstdint>

#include "memsim/address_map.hpp"
#include "memsim/traffic.hpp"
#include "model/config.hpp"

namespace efld::accel {

enum class MatrixId : std::uint8_t { kWq, kWk, kWv, kWo, kWGate, kWUp, kWDown };

// AXI-Lite command word from the PS (token index + phase flag).
struct TokenCommand {
    std::int32_t token_index = 0;
    bool is_prefill = false;
};

class Mcu {
public:
    Mcu(const model::ModelConfig& cfg, const model::QuantScheme& scheme,
        memsim::AddressMap map = memsim::AddressMap::kv260_bare_metal());

    // --- weight-side descriptors (MM2S) ---------------------------------
    [[nodiscard]] memsim::Transaction embedding_read(std::int32_t token) const;
    // The full interleaved stream of one projection matrix.
    [[nodiscard]] memsim::Transaction weight_stream_read(std::size_t layer, MatrixId m) const;
    // Contiguous sub-stream covering rows [row_begin, row_end) — the per-head
    // segment of the fine-grained pipeline.
    [[nodiscard]] memsim::Transaction weight_rows_read(std::size_t layer, MatrixId m,
                                                       std::size_t row_begin,
                                                       std::size_t row_end) const;
    [[nodiscard]] memsim::Transaction lm_head_read() const;
    [[nodiscard]] memsim::Transaction norms_read(std::size_t layer) const;

    // --- KV-side descriptors ---------------------------------------------
    [[nodiscard]] memsim::Transaction kv_code_read(std::size_t layer, std::size_t kv_head,
                                                   bool is_value, std::size_t ctx) const;
    [[nodiscard]] memsim::Transaction kv_pack_read(std::size_t layer, std::size_t kv_head,
                                                   bool is_value, std::size_t ctx) const;
    // History sub-range [tok_begin, tok_end) — one paged-KV burst. The full
    // reads above are the [0, ctx) special case.
    [[nodiscard]] memsim::Transaction kv_code_read_range(std::size_t layer,
                                                         std::size_t kv_head,
                                                         bool is_value,
                                                         std::size_t tok_begin,
                                                         std::size_t tok_end) const;
    // Pack words covering [tok_begin, tok_end): words tok_begin/16 through
    // ceil(tok_end/16). A range that straddles a word re-reads it, exactly as
    // a paged descriptor would.
    [[nodiscard]] memsim::Transaction kv_pack_read_range(std::size_t layer,
                                                         std::size_t kv_head,
                                                         bool is_value,
                                                         std::size_t tok_begin,
                                                         std::size_t tok_end) const;
    [[nodiscard]] memsim::Transaction kv_code_write(std::size_t layer, std::size_t kv_head,
                                                    bool is_value, std::size_t token) const;
    // Pack write happens only when the FIFO word fills (token % 16 == 15).
    [[nodiscard]] bool pack_write_due(std::size_t token) const noexcept;
    [[nodiscard]] memsim::Transaction kv_pack_write(std::size_t layer, std::size_t kv_head,
                                                    bool is_value, std::size_t token) const;

    // --- geometry --------------------------------------------------------
    [[nodiscard]] std::uint64_t matrix_stream_bytes(MatrixId m) const;
    [[nodiscard]] std::uint64_t lm_head_stream_bytes() const noexcept { return lm_head_bytes_; }
    [[nodiscard]] const memsim::AddressMap& map() const noexcept { return map_; }
    [[nodiscard]] const model::ModelConfig& config() const noexcept { return cfg_; }

private:
    struct MatrixGeom {
        std::uint64_t rows = 0;
        std::uint64_t cols = 0;
        std::uint64_t stream_bytes = 0;
    };

    [[nodiscard]] MatrixGeom geom(MatrixId m) const;
    [[nodiscard]] std::uint64_t matrix_addr(std::size_t layer, MatrixId m) const;
    [[nodiscard]] std::uint64_t kv_code_base(std::size_t layer, std::size_t kv_head,
                                             bool is_value) const;
    [[nodiscard]] std::uint64_t kv_pack_base(std::size_t layer, std::size_t kv_head,
                                             bool is_value) const;

    model::ModelConfig cfg_;
    model::QuantScheme scheme_;
    memsim::AddressMap map_;

    std::uint64_t embedding_addr_ = 0;
    std::vector<std::uint64_t> layer_weight_addr_;  // base of each layer's streams
    std::uint64_t lm_head_addr_ = 0;
    std::uint64_t lm_head_bytes_ = 0;
    std::vector<std::uint64_t> norms_addr_;
    std::vector<std::uint64_t> kv_code_addr_;  // per layer
    std::vector<std::uint64_t> kv_pack_addr_;  // per layer
};

}  // namespace efld::accel
