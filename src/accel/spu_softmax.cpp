#include "accel/spu_softmax.hpp"

#include "common/check.hpp"

namespace efld::accel {

SpuCycles SpuSoftmax::run(std::span<const Fp16> x, std::span<Fp16> out) const {
    check(x.size() == out.size(), "SpuSoftmax: size mismatch");
    check(!x.empty(), "SpuSoftmax: empty input");

    // Pass 1: maximum.
    Fp16 m = x[0];
    for (const Fp16 v : x) {
        if (m < v) m = v;
    }

    // Pass 2: exponentials and their sum. The sum accumulates in fp32-width
    // hardware (DSP cascade) to avoid saturating fp16 at long contexts.
    float denom = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = exp_.exp(x[i] - m);
        denom += out[i].to_float();
    }
    check(denom > 0.0f, "SpuSoftmax: zero denominator");

    // Pass 3: normalize.
    const Fp16 inv = Fp16::from_float(1.0f / denom);
    for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = out[i] * inv;
    }

    return SpuCycles{3 * x.size() + 16};  // three passes + divider latency
}

}  // namespace efld::accel
