// Online KV quantization submodule (Fig. 5C6): two passes over the input.
//
// Pass 1 tracks min/max to derive the scale and zero point; pass 2 emits
// 8-bit codes. Runs concurrently with key/value generation in the fused
// pipeline (§V.A), so the quantization of the current token's K and V is
// free. The resulting scale-zero pack goes to the Fig. 4B FIFO, and the
// codes go through the serial-to-parallel unit back to DDR.
#pragma once

#include <span>
#include <vector>

#include "accel/spu_rope.hpp"  // SpuCycles
#include "quant/kvquant.hpp"

namespace efld::accel {

class SpuQuant {
public:
    struct Result {
        std::vector<std::uint8_t> codes;
        quant::KvQuantParams params;
        SpuCycles cycles;
    };

    [[nodiscard]] Result run(std::span<const Fp16> x) const;
};

}  // namespace efld::accel
