#include "accel/vpu.hpp"

#include "common/check.hpp"

namespace efld::accel {

std::array<Fp16, kVpuLanes> DequantUnit::run(const Word512& word, Fp16 scale,
                                             std::uint8_t zero) noexcept {
    std::array<Fp16, kVpuLanes> out;
    const float s = scale.to_float();
    const int z = zero;
    for (std::size_t i = 0; i < kVpuLanes; ++i) {
        // (code - zero) * scale, rounded once to fp16 — the hardware computes
        // this as a small integer subtract feeding an fp16 multiply.
        const int code = word.nibble(i);
        out[i] = Fp16::from_float(static_cast<float>(code - z) * s);
    }
    return out;
}

std::array<Fp16, kVpuLanes> DequantUnit::run(std::span<const std::uint8_t> codes,
                                             Fp16 scale, std::uint8_t zero) noexcept {
    std::array<Fp16, kVpuLanes> out{};
    const float s = scale.to_float();
    const int z = zero;
    const std::size_t n = std::min(codes.size(), kVpuLanes);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = Fp16::from_float(static_cast<float>(static_cast<int>(codes[i]) - z) * s);
    }
    return out;
}

std::vector<Fp16> DequantUnit::run_kv(std::span<const std::uint8_t> codes,
                                      quant::KvQuantParams params) {
    std::vector<Fp16> out(codes.size());
    const float s = params.scale.to_float();
    const int z = params.zero;
    for (std::size_t i = 0; i < codes.size(); ++i) {
        out[i] = Fp16::from_float(static_cast<float>(static_cast<int>(codes[i]) - z) * s);
    }
    return out;
}

Fp16 DotEngine::tree_sum(std::span<const Fp16> vals) noexcept {
    if (vals.empty()) return Fp16::zero();
    // Iterative binary tree: each stage halves the vector, rounding each
    // partial sum to fp16 (one adder per tree node).
    std::vector<Fp16> stage(vals.begin(), vals.end());
    while (stage.size() > 1) {
        std::vector<Fp16> next;
        next.reserve((stage.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < stage.size(); i += 2) {
            next.push_back(stage[i] + stage[i + 1]);
        }
        if (stage.size() % 2 == 1) next.push_back(stage.back());
        stage = std::move(next);
    }
    return stage[0];
}

Fp16 DotEngine::dot128(std::span<const Fp16> a, std::span<const Fp16> b) noexcept {
    const std::size_t n = std::min(a.size(), b.size());
    std::array<Fp16, kVpuLanes> prod{};
    for (std::size_t i = 0; i < n; ++i) prod[i] = a[i] * b[i];
    return tree_sum(std::span<const Fp16>(prod.data(), n));
}

Fp16 DotEngine::dot(std::span<const Fp16> a, std::span<const Fp16> b) noexcept {
    Fp16 acc = Fp16::zero();
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t base = 0; base < n; base += kVpuLanes) {
        const std::size_t len = std::min(kVpuLanes, n - base);
        acc = acc + dot128(a.subspan(base, len), b.subspan(base, len));
    }
    return acc;
}

void DotEngine::gemv(std::span<const Word512> stream, std::size_t rows, std::size_t cols,
                     std::span<const Fp16> x, std::span<Fp16> y) {
    check(cols % kVpuLanes == 0, "DotEngine::gemv: cols must be a multiple of 128");
    check(x.size() == cols, "DotEngine::gemv: x size mismatch");
    check(y.size() == rows, "DotEngine::gemv: y size mismatch");

    const std::size_t groups_per_row = cols / kVpuLanes;
    quant::WeightStreamDecoder dec(rows * groups_per_row);

    std::size_t group_index = 0;
    Fp16 acc = Fp16::zero();
    for (const Word512& word : stream) {
        const auto decoded = dec.consume(word);
        if (!decoded) continue;
        const auto lanes = DequantUnit::run(decoded->codes, decoded->scale, decoded->zero);

        const std::size_t col_base = (group_index % groups_per_row) * kVpuLanes;
        const Fp16 partial = dot128(lanes, x.subspan(col_base, kVpuLanes));
        acc = acc + partial;

        if ((group_index + 1) % groups_per_row == 0) {
            y[group_index / groups_per_row] = acc;
            acc = Fp16::zero();
        }
        ++group_index;
    }
    check(group_index == rows * groups_per_row, "DotEngine::gemv: stream too short");
}

std::vector<Fp16> to_fp16(std::span<const float> x) {
    std::vector<Fp16> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = Fp16::from_float(x[i]);
    return out;
}

std::vector<float> to_float(std::span<const Fp16> x) {
    std::vector<float> out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i].to_float();
    return out;
}

}  // namespace efld::accel
