// Top-level accelerator simulator: the full functional datapath (fp16 VPU,
// SPU submodules, KV8 cache, Fig. 4 formats) plus the cycle model.
//
// step() executes one decode step exactly as the hardware would — weights
// dequantized from the interleaved bus stream, activations in fp16, RoPE from
// the quarter-wave ROM, three-pass softmax, online KV quantization with the
// scale-zero FIFO — and simultaneously reports the token's simulated latency
// on the KV260 memory system. Functional results are therefore validated
// against the float reference while timing reproduces the paper's
// decode-speed numbers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "accel/cycle_model.hpp"
#include "accel/hw_exp.hpp"
#include "accel/packed_model.hpp"
#include "accel/serial_to_parallel.hpp"
#include "accel/spu_quant.hpp"
#include "accel/spu_rmsnorm.hpp"
#include "accel/spu_rope.hpp"
#include "accel/spu_silu.hpp"
#include "accel/spu_softmax.hpp"
#include "accel/vpu.hpp"
#include "model/sampler.hpp"
#include "quant/scale_zero_pack.hpp"

namespace efld::accel {

struct AcceleratorOptions {
    AccelConfig accel{};
    memsim::MemorySystemConfig mem = memsim::MemorySystemConfig::kv260();
    bool collect_timing = true;  // disable to run functional-only (faster)
};

struct StepResult {
    std::vector<float> logits;
    TokenTiming timing;  // zeroed when collect_timing is off
};

struct GenerationResult {
    std::vector<std::int32_t> tokens;
    double total_ns = 0.0;

    [[nodiscard]] double tokens_per_s() const noexcept {
        return total_ns > 0.0
                   ? static_cast<double>(tokens.size()) * 1e9 / total_ns
                   : 0.0;
    }
};

class Accelerator {
public:
    // Non-owning: `m` must outlive the accelerator.
    explicit Accelerator(const PackedModel& m, AcceleratorOptions opts = {});

    StepResult step(std::int32_t token);

    // Prefills `prompt`, then decodes up to `max_new` tokens (stops at EOS id
    // if `eos` >= 0). Returns generated tokens and simulated decode time.
    GenerationResult generate(std::span<const std::int32_t> prompt, std::size_t max_new,
                              model::Sampler& sampler, std::int32_t eos = -1);

    void reset();

    [[nodiscard]] std::size_t position() const noexcept { return pos_; }
    [[nodiscard]] const model::ModelConfig& config() const noexcept { return model_->config; }
    [[nodiscard]] const quant::ScaleZeroFifo& scale_zero_fifo() const noexcept {
        return sz_fifo_;
    }
    [[nodiscard]] DecodeCycleModel& cycle_model() noexcept { return timing_; }

private:
    struct KvEntry {
        std::vector<std::uint8_t> codes;
        quant::KvQuantParams params;
    };

    [[nodiscard]] std::size_t kv_slot(std::size_t layer, std::size_t token,
                                      std::size_t kv_head) const noexcept;

    void attention(std::size_t layer, std::vector<Fp16>& x);
    void mlp(std::size_t layer, std::vector<Fp16>& x);

    const PackedModel* model_;
    AcceleratorOptions opts_;
    DecodeCycleModel timing_;

    HwExp exp_;
    SpuRope rope_;
    SpuRmsNorm rms_;
    SpuSoftmax softmax_;
    SpuSilu silu_;
    SpuQuant kv_quant_;
    SerialToParallel s2p_;
    quant::ScaleZeroFifo sz_fifo_;

    std::size_t pos_ = 0;
    std::vector<KvEntry> k_cache_;  // [layer][token][kv_head]
    std::vector<KvEntry> v_cache_;
};

}  // namespace efld::accel
