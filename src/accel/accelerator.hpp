// Top-level accelerator simulator: the full functional datapath (fp16 VPU,
// SPU submodules, KV8 cache, Fig. 4 formats) plus the cycle model.
//
// step() executes one decode step exactly as the hardware would — weights
// dequantized from the interleaved bus stream, activations in fp16, RoPE from
// the quarter-wave ROM, three-pass softmax, online KV quantization with the
// scale-zero FIFO — and simultaneously reports the token's simulated latency
// on the KV260 memory system. Functional results are therefore validated
// against the float reference while timing reproduces the paper's
// decode-speed numbers.
//
// The accelerator is also a DecodeBackend: with max_batch > 1 it owns that
// many independent KV session slots (per-slot cache, position, and scale-zero
// FIFO) and decode_batch advances any subset of them in one simulated step.
// The functional math stays per-session (each lane is bit-identical to a solo
// run), but the step is PRICED as the device would execute it — weights
// streamed once for the whole batch, KV streams and SPU work per session
// (DecodeCycleModel::batch_timing) — so the serving layer can report
// simulated KV260 serving throughput, not just single-stream decode.
//
// Paged KV (AccelConfig::kv_page_tokens > 0): a session's KV history is
// priced as one DDR burst per block-table page (each with its own descriptor
// overhead) instead of one contiguous burst, matching the kvpool layout the
// serving layer budgets with. Functional results are unchanged — paging is a
// capacity/layout property; the twin's in-memory KV arrays are simulation
// scaffolding, not modeled DDR.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "accel/cycle_model.hpp"
#include "accel/hw_exp.hpp"
#include "accel/packed_model.hpp"
#include "accel/serial_to_parallel.hpp"
#include "accel/spu_quant.hpp"
#include "accel/spu_rmsnorm.hpp"
#include "accel/spu_rope.hpp"
#include "accel/spu_silu.hpp"
#include "accel/spu_softmax.hpp"
#include "accel/vpu.hpp"
#include "engine/decode_backend.hpp"
#include "model/sampler.hpp"
#include "prefix/prefix_index.hpp"
#include "quant/scale_zero_pack.hpp"

namespace efld::accel {

struct AcceleratorOptions {
    AccelConfig accel{};
    memsim::MemorySystemConfig mem = memsim::MemorySystemConfig::kv260();
    bool collect_timing = true;  // disable to run functional-only (faster)
    // Concurrent KV session slots (DecodeBackend). Each slot reserves its own
    // KV cache region, position, and scale-zero FIFO.
    std::size_t max_batch = 1;
    // Prefix sharing (requires accel.kv_page_tokens > 0): keep a store of
    // computed KV pages keyed by chained prompt-page hashes, so sessions whose
    // prompts start with an already-served prefix skip that prefill. The twin
    // has no shared physical pool — its in-memory caches are per-session
    // simulation scaffolding — so adoption deep-copies the stored entries
    // (bit-identical to re-prefilling) and there is no copy-on-write; the DDR
    // capacity effect is modeled by the serving layer's governor, the latency
    // effect by DecodeCycleModel::prefill_timing_shared. Off by default.
    bool prefix_sharing = false;
};

struct StepResult {
    std::vector<float> logits;
    TokenTiming timing;  // zeroed when collect_timing is off
};

struct GenerationResult {
    std::vector<std::int32_t> tokens;
    double total_ns = 0.0;

    [[nodiscard]] double tokens_per_s() const noexcept {
        return total_ns > 0.0
                   ? static_cast<double>(tokens.size()) * 1e9 / total_ns
                   : 0.0;
    }
};

class Accelerator : public engine::DecodeBackend {
public:
    // Non-owning: `m` must outlive the accelerator.
    explicit Accelerator(const PackedModel& m, AcceleratorOptions opts = {});

    // One decode step on slot 0 (the historical single-session API).
    StepResult step(std::int32_t token);

    // Prefills `prompt`, then decodes up to `max_new` tokens (stops at EOS id
    // if `eos` >= 0) on slot 0. Returns generated tokens and simulated decode
    // time.
    GenerationResult generate(std::span<const std::int32_t> prompt, std::size_t max_new,
                              model::Sampler& sampler, std::int32_t eos = -1);

    [[nodiscard]] std::size_t position() const noexcept { return pos_[0]; }
    [[nodiscard]] const quant::ScaleZeroFifo& scale_zero_fifo() const noexcept {
        return sz_fifo_[0];
    }
    [[nodiscard]] DecodeCycleModel& cycle_model() noexcept { return timing_; }

    // --- engine::DecodeBackend ---
    [[nodiscard]] const model::ModelConfig& config() const noexcept override {
        return model_->config;
    }
    [[nodiscard]] std::size_t max_batch() const noexcept override {
        return opts_.max_batch;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "accel"; }
    [[nodiscard]] std::size_t position(std::size_t slot) const override;
    [[nodiscard]] std::size_t reserve_slot() override;
    void release_slot(std::size_t slot) override;
    void decode_batch(std::span<const std::int32_t> tokens,
                      std::span<const std::size_t> slots,
                      std::span<float> logits_out) override;
    void reset() override;  // all slots (reservations survive)
    [[nodiscard]] engine::StepCost last_step_cost() const noexcept override {
        return last_cost_;
    }
    void set_profiler(obs::Profiler* profiler) override { profiler_ = profiler; }

    // Prefix sharing (active when opts_.prefix_sharing): the contract is in
    // decode_backend.hpp. Full-page adoption only — the scale-zero FIFO is
    // replayed from the stored packs, so covered spans must end on a page
    // boundary to leave it exactly as a real prefill would.
    [[nodiscard]] std::size_t probe_prefix(std::span<const std::int32_t> prompt,
                                           std::size_t max_cover) const override;
    std::size_t adopt_prefix(std::size_t slot, std::span<const std::int32_t> prompt,
                             std::size_t max_cover) override;
    std::size_t register_prefix(std::size_t slot,
                                std::span<const std::int32_t> prompt,
                                std::size_t max_new_pages) override;
    std::size_t drop_prefix_cache() override;
    [[nodiscard]] engine::PrefixSharingStats prefix_stats() const override;

private:
    struct KvEntry {
        std::vector<std::uint8_t> codes;
        quant::KvQuantParams params;
    };

    // One stored prefix page: deep copies of the KV entries for a full
    // kv_page_tokens span, keyed in prefix_store_ by the span's chain hash.
    // Entry (layer, t, head) lives at (layer * page_tokens + t) * n_kv_heads
    // + head.
    struct StoredPage {
        std::vector<KvEntry> k;
        std::vector<KvEntry> v;
    };

    [[nodiscard]] std::size_t kv_slot(std::size_t session, std::size_t layer,
                                      std::size_t token,
                                      std::size_t kv_head) const noexcept;
    [[nodiscard]] std::size_t page_entry_idx(std::size_t layer, std::size_t t,
                                             std::size_t kv_head) const noexcept;
    // Pages of `hashes` present front-to-back in prefix_store_ (first miss
    // stops the walk). Caller holds prefix_mu_.
    [[nodiscard]] std::size_t matched_pages(
        const std::vector<std::uint64_t>& hashes) const;
    void reset_session(std::size_t slot);

    // One functional forward pass of `token` through session `slot`, writing
    // float logits and advancing the slot's position. No timing.
    void forward_slot(std::int32_t token, std::size_t slot, std::span<float> logits_out);

    void attention(std::size_t layer, std::size_t slot, std::vector<Fp16>& x);
    void mlp(std::size_t layer, std::vector<Fp16>& x);

    const PackedModel* model_;
    AcceleratorOptions opts_;
    DecodeCycleModel timing_;

    HwExp exp_;
    SpuRope rope_;
    SpuRmsNorm rms_;
    SpuSoftmax softmax_;
    SpuSilu silu_;
    SpuQuant kv_quant_;
    SerialToParallel s2p_;
    std::vector<quant::ScaleZeroFifo> sz_fifo_;  // one per session slot

    std::vector<std::size_t> pos_;           // per session slot
    engine::SlotLedger slots_;               // DecodeBackend reservations
    std::vector<KvEntry> k_cache_;           // [session][layer][token][kv_head]
    std::vector<KvEntry> v_cache_;
    std::vector<std::size_t> ctx_scratch_;   // batch pricing, no per-step alloc
    engine::StepCost last_cost_{};
    obs::Profiler* profiler_ = nullptr;      // serving-layer owned; may be null

    // Prefix store + its lock (probe reads cross-thread while the driver
    // adopts/registers); hit counters are relaxed atomics like the host's.
    mutable std::mutex prefix_mu_;
    std::unordered_map<std::uint64_t, StoredPage> prefix_store_;
    std::atomic<std::size_t> prefix_hits_{0};
    std::atomic<std::size_t> prefix_covered_{0};
};

}  // namespace efld::accel
