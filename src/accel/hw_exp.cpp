#include "accel/hw_exp.hpp"

#include <cmath>

namespace efld::accel {

HwExp::HwExp() {
    for (std::size_t i = 0; i < kRomEntries; ++i) {
        const double f = static_cast<double>(i) / static_cast<double>(kRomEntries);
        rom_[i] = Fp16::from_float(static_cast<float>(std::pow(2.0, f)));
    }
}

Fp16 HwExp::exp(Fp16 x) const noexcept {
    const float xf = x.to_float();
    constexpr float kLog2e = 1.4426950408889634f;
    const float t = xf * kLog2e;
    // fp16 exp underflows below ~-17.3 and overflows above ~11.1.
    if (t < -25.0f) return Fp16::zero();
    if (t > 16.0f) return Fp16::infinity();

    const float kf = std::floor(t);
    const int k = static_cast<int>(kf);
    const float f = t - kf;  // [0, 1)
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(f * static_cast<float>(kRomEntries)), kRomEntries - 1);
    // 2^k is exact in fp16 within range; the multiply rounds once.
    const float two_k = std::ldexp(1.0f, k);
    return Fp16::from_float(rom_[idx].to_float() * two_k);
}

Fp16 HwExp::sigmoid(Fp16 x) const noexcept {
    const Fp16 e = exp(-x);
    return Fp16::one() / (Fp16::one() + e);
}

}  // namespace efld::accel
