#include "accel/mcu.hpp"

#include "common/bitpack.hpp"
#include "common/check.hpp"
#include "quant/weight_format.hpp"

namespace efld::accel {

using memsim::Dir;
using memsim::Transaction;

namespace {
// The paper keeps the KV regions of the first 16 layers in the high window.
constexpr std::size_t kHighKvLayers = 16;
}  // namespace

Mcu::Mcu(const model::ModelConfig& cfg, const model::QuantScheme& scheme,
         memsim::AddressMap map)
    : cfg_(cfg), scheme_(scheme), map_(std::move(map)) {
    check(cfg_.dim % kNibblesPerWord == 0, "Mcu: dim must be a multiple of 128");

    const std::uint64_t kv_elem = scheme_.kv_bits / 8;
    const std::uint64_t kv_code_region =
        2 * cfg_.kv_dim() * cfg_.max_seq_len * kv_elem;
    const std::uint64_t kv_pack_region =
        scheme_.kv_bits < 16
            ? 2 * cfg_.n_kv_heads * div_ceil(cfg_.max_seq_len, 16) * kBusBytes
            : 0;

    // Allocation mirrors the paper's layout: embedding + early-layer KV into
    // the high window first, then the weight streams fill whatever remains.
    embedding_addr_ =
        map_.allocate("embedding",
                      cfg_.embedding_params() * (scheme_.embedding_fp16 ? 2 : 1),
                      memsim::AddressMap::Placement::kHigh)
            .base;

    kv_code_addr_.resize(cfg_.n_layers);
    kv_pack_addr_.resize(cfg_.n_layers);
    const std::size_t high_kv = std::min<std::size_t>(kHighKvLayers, cfg_.n_layers);
    for (std::size_t l = 0; l < high_kv; ++l) {
        kv_code_addr_[l] = map_.allocate("kv_codes_L" + std::to_string(l), kv_code_region,
                                         memsim::AddressMap::Placement::kHigh)
                               .base;
        if (kv_pack_region > 0) {
            kv_pack_addr_[l] = map_.allocate("kv_packs_L" + std::to_string(l),
                                             kv_pack_region,
                                             memsim::AddressMap::Placement::kHigh)
                                   .base;
        }
    }

    std::uint64_t layer_bytes = 0;
    for (const MatrixId m : {MatrixId::kWq, MatrixId::kWk, MatrixId::kWv, MatrixId::kWo,
                             MatrixId::kWGate, MatrixId::kWUp, MatrixId::kWDown}) {
        layer_bytes += geom(m).stream_bytes;
    }
    layer_weight_addr_.resize(cfg_.n_layers);
    norms_addr_.resize(cfg_.n_layers);
    for (std::size_t l = 0; l < cfg_.n_layers; ++l) {
        layer_weight_addr_[l] =
            map_.allocate("weights_L" + std::to_string(l), layer_bytes).base;
        norms_addr_[l] = map_.allocate("norms_L" + std::to_string(l), 2 * cfg_.dim * 2).base;
    }

    for (std::size_t l = high_kv; l < cfg_.n_layers; ++l) {
        kv_code_addr_[l] =
            map_.allocate("kv_codes_L" + std::to_string(l), kv_code_region).base;
        if (kv_pack_region > 0) {
            kv_pack_addr_[l] =
                map_.allocate("kv_packs_L" + std::to_string(l), kv_pack_region).base;
        }
    }

    if (scheme_.lm_head_quantized) {
        const std::uint64_t groups = cfg_.lm_head_params() / kNibblesPerWord;
        lm_head_bytes_ = quant::stream_words(groups) * kBusBytes;
    } else {
        lm_head_bytes_ = cfg_.lm_head_params() * 2;
    }
    lm_head_addr_ = map_.allocate("lm_head", lm_head_bytes_).base;
    map_.allocate("final_norm", cfg_.dim * 2);
}

Mcu::MatrixGeom Mcu::geom(MatrixId m) const {
    MatrixGeom g;
    switch (m) {
        case MatrixId::kWq: g.rows = cfg_.dim; g.cols = cfg_.dim; break;
        case MatrixId::kWk: g.rows = cfg_.kv_dim(); g.cols = cfg_.dim; break;
        case MatrixId::kWv: g.rows = cfg_.kv_dim(); g.cols = cfg_.dim; break;
        case MatrixId::kWo: g.rows = cfg_.dim; g.cols = cfg_.dim; break;
        case MatrixId::kWGate: g.rows = cfg_.hidden_dim; g.cols = cfg_.dim; break;
        case MatrixId::kWUp: g.rows = cfg_.hidden_dim; g.cols = cfg_.dim; break;
        case MatrixId::kWDown: g.rows = cfg_.dim; g.cols = cfg_.hidden_dim; break;
    }
    if (scheme_.weight_bits >= 16) {
        g.stream_bytes = g.rows * g.cols * 2;
    } else {
        // cols may not divide 128 exactly for exotic configs; round groups up.
        const std::uint64_t groups = g.rows * div_ceil(g.cols, kNibblesPerWord);
        g.stream_bytes = quant::stream_words(groups) * kBusBytes;
        if (scheme_.weight_bits == 8) g.stream_bytes *= 2;  // W8 doubles code width
    }
    return g;
}

std::uint64_t Mcu::matrix_stream_bytes(MatrixId m) const { return geom(m).stream_bytes; }

std::uint64_t Mcu::matrix_addr(std::size_t layer, MatrixId m) const {
    check(layer < cfg_.n_layers, "Mcu: layer out of range");
    std::uint64_t off = 0;
    for (const MatrixId mm : {MatrixId::kWq, MatrixId::kWk, MatrixId::kWv, MatrixId::kWo,
                              MatrixId::kWGate, MatrixId::kWUp, MatrixId::kWDown}) {
        if (mm == m) break;
        off += geom(mm).stream_bytes;
    }
    return layer_weight_addr_[layer] + off;
}

Transaction Mcu::embedding_read(std::int32_t token) const {
    check(token >= 0 && static_cast<std::uint64_t>(token) < cfg_.vocab_size,
          "Mcu: token out of range");
    const std::uint64_t row_bytes = cfg_.dim * (scheme_.embedding_fp16 ? 2 : 1);
    return {embedding_addr_ + static_cast<std::uint64_t>(token) * row_bytes, row_bytes,
            Dir::kRead};
}

Transaction Mcu::weight_stream_read(std::size_t layer, MatrixId m) const {
    return {matrix_addr(layer, m), geom(m).stream_bytes, Dir::kRead};
}

Transaction Mcu::weight_rows_read(std::size_t layer, MatrixId m, std::size_t row_begin,
                                  std::size_t row_end) const {
    const MatrixGeom g = geom(m);
    check(row_begin < row_end && row_end <= g.rows, "Mcu: bad row range");
    // Rows map proportionally onto the interleaved stream; align to bus words.
    const std::uint64_t begin_off =
        g.stream_bytes * row_begin / g.rows / kBusBytes * kBusBytes;
    const std::uint64_t end_off =
        align_up(g.stream_bytes * row_end / g.rows, kBusBytes);
    return {matrix_addr(layer, m) + begin_off, end_off - begin_off, Dir::kRead};
}

Transaction Mcu::lm_head_read() const {
    return {lm_head_addr_, lm_head_bytes_, Dir::kRead};
}

Transaction Mcu::norms_read(std::size_t layer) const {
    check(layer < cfg_.n_layers, "Mcu: layer out of range");
    return {norms_addr_[layer], 2 * cfg_.dim * 2, Dir::kRead};
}

std::uint64_t Mcu::kv_code_base(std::size_t layer, std::size_t kv_head,
                                bool is_value) const {
    check(layer < cfg_.n_layers && kv_head < cfg_.n_kv_heads, "Mcu: bad KV slot");
    const std::uint64_t kv_elem = scheme_.kv_bits / 8;
    const std::uint64_t per_stream = cfg_.max_seq_len * cfg_.head_dim() * kv_elem;
    const std::uint64_t stream =
        (is_value ? cfg_.n_kv_heads : 0) + kv_head;
    return kv_code_addr_[layer] + stream * per_stream;
}

std::uint64_t Mcu::kv_pack_base(std::size_t layer, std::size_t kv_head,
                                bool is_value) const {
    const std::uint64_t words = div_ceil(cfg_.max_seq_len, 16);
    const std::uint64_t stream = (is_value ? cfg_.n_kv_heads : 0) + kv_head;
    return kv_pack_addr_[layer] + stream * words * kBusBytes;
}

Transaction Mcu::kv_code_read(std::size_t layer, std::size_t kv_head, bool is_value,
                              std::size_t ctx) const {
    return kv_code_read_range(layer, kv_head, is_value, 0, ctx);
}

Transaction Mcu::kv_pack_read(std::size_t layer, std::size_t kv_head, bool is_value,
                              std::size_t ctx) const {
    return kv_pack_read_range(layer, kv_head, is_value, 0, ctx);
}

Transaction Mcu::kv_code_read_range(std::size_t layer, std::size_t kv_head,
                                    bool is_value, std::size_t tok_begin,
                                    std::size_t tok_end) const {
    check(tok_begin <= tok_end && tok_end <= cfg_.max_seq_len,
          "Mcu: bad KV token range");
    const std::uint64_t kv_elem = scheme_.kv_bits / 8;
    const std::uint64_t row = cfg_.head_dim() * kv_elem;
    return {kv_code_base(layer, kv_head, is_value) + tok_begin * row,
            (tok_end - tok_begin) * row, Dir::kRead};
}

Transaction Mcu::kv_pack_read_range(std::size_t layer, std::size_t kv_head,
                                    bool is_value, std::size_t tok_begin,
                                    std::size_t tok_end) const {
    check(tok_begin <= tok_end && tok_end <= cfg_.max_seq_len,
          "Mcu: bad KV token range");
    if (scheme_.kv_bits >= 16) {
        return {kv_pack_base(layer, kv_head, is_value), 0, Dir::kRead};
    }
    const std::uint64_t word_begin = tok_begin / 16;
    const std::uint64_t word_end = div_ceil(tok_end, 16);
    return {kv_pack_base(layer, kv_head, is_value) + word_begin * kBusBytes,
            (word_end - word_begin) * kBusBytes, Dir::kRead};
}

Transaction Mcu::kv_code_write(std::size_t layer, std::size_t kv_head, bool is_value,
                               std::size_t token) const {
    check(token < cfg_.max_seq_len, "Mcu: token beyond KV reservation");
    const std::uint64_t kv_elem = scheme_.kv_bits / 8;
    const std::uint64_t row = cfg_.head_dim() * kv_elem;
    return {kv_code_base(layer, kv_head, is_value) + token * row, row, Dir::kWrite};
}

bool Mcu::pack_write_due(std::size_t token) const noexcept {
    return scheme_.kv_bits < 16 && (token % 16 == 15);
}

Transaction Mcu::kv_pack_write(std::size_t layer, std::size_t kv_head, bool is_value,
                               std::size_t token) const {
    check(pack_write_due(token), "Mcu: pack write not due at this token");
    const std::uint64_t word = token / 16;
    return {kv_pack_base(layer, kv_head, is_value) + word * kBusBytes, kBusBytes,
            Dir::kWrite};
}

}  // namespace efld::accel
